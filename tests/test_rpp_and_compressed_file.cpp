// Tests for the reduced-precision-pack baseline (paper ref. [19]) and
// the sharded compressed-dataset container.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "compressors/rpp/rpp.h"
#include "io/compressed_file.h"
#include "io/file_per_process.h"
#include "test_util.h"

namespace pastri {
namespace {

using testutil::max_abs_diff;

TEST(Rpp, RoundTripWithinBound) {
  const auto data = testutil::random_doubles(10000, -1.0, 1.0, 3);
  for (double eb : {1e-6, 1e-10, 1e-13}) {
    const auto back =
        baselines::rpp_decompress(baselines::rpp_compress(data, eb));
    ASSERT_EQ(back.size(), data.size());
    EXPECT_LE(max_abs_diff(data, back), eb) << eb;
  }
}

TEST(Rpp, EriDataWithinBound) {
  const auto& ds = testutil::small_eri_dataset();
  const auto back = baselines::rpp_decompress(
      baselines::rpp_compress(ds.values, 1e-10));
  EXPECT_LE(max_abs_diff(ds.values, back), 1e-10);
}

TEST(Rpp, RatioInPaperBand) {
  // Section II: a customized real-number format reaches only ~1.5-2.5x
  // on data whose magnitudes sit well above the bound.  Uniform values
  // in [0.5, 1] at EB=1e-10 need sign+exp+~33 mantissa bits ~= 45 bits.
  const auto data = testutil::random_doubles(20000, 0.5, 1.0, 7);
  const auto stream = baselines::rpp_compress(data, 1e-10);
  const double ratio =
      static_cast<double>(data.size() * 8) / stream.size();
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 2.6);
}

TEST(Rpp, TinyValuesCollapse) {
  const std::vector<double> data(5000, 1e-14);
  const auto stream = baselines::rpp_compress(data, 1e-10);
  EXPECT_LT(stream.size(), 700u + 32);  // ~1 bit per value
  for (double v : baselines::rpp_decompress(stream)) EXPECT_EQ(v, 0.0);
}

TEST(Rpp, Rejections) {
  EXPECT_THROW(baselines::rpp_compress({}, 0.0), std::invalid_argument);
  auto stream = baselines::rpp_compress(std::vector<double>(4, 1.0), 1e-9);
  stream[0] ^= 0x7;
  EXPECT_THROW(baselines::rpp_decompress(stream), std::runtime_error);
}

class CompressedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: the suite must survive parallel ctest runs.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("pastri_cfile_") + info->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(CompressedFileTest, RoundTripSingleShard) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  const std::size_t bytes =
      io::write_compressed_dataset(ds, p, 1, dir_, "ds");
  EXPECT_LT(bytes, ds.size_bytes());
  const auto back = io::read_compressed_dataset(dir_, "ds");
  EXPECT_EQ(back.label, ds.label);
  EXPECT_EQ(back.shape, ds.shape);
  EXPECT_EQ(back.num_blocks, ds.num_blocks);
  EXPECT_LE(max_abs_diff(ds.values, back.values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(CompressedFileTest, RoundTripManyShards) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  io::write_compressed_dataset(ds, p, 7, dir_, "sharded");
  const auto info = io::read_manifest(dir_, "sharded");
  EXPECT_EQ(info.layout.num_shards, 7u);
  std::size_t total = 0;
  for (auto n : info.layout.blocks_per_shard) total += n;
  EXPECT_EQ(total, ds.num_blocks);
  const auto back = io::read_compressed_dataset(dir_, "sharded");
  EXPECT_LE(max_abs_diff(ds.values, back.values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(CompressedFileTest, MoreShardsThanBlocks) {
  qc::EriDataset tiny;
  tiny.label = "tiny";
  tiny.shape.n = {1, 1, 2, 2};
  tiny.num_blocks = 3;
  tiny.values = {1e-3, 2e-3, 3e-3, 4e-3, 0, 0, 0, 0, -1e-5, 0, 1e-5, 2e-5};
  Params p;
  io::write_compressed_dataset(tiny, p, 8, dir_, "tiny");
  const auto back = io::read_compressed_dataset(dir_, "tiny");
  EXPECT_EQ(back.num_blocks, 3u);
  EXPECT_LE(max_abs_diff(tiny.values, back.values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(CompressedFileTest, ShardBlockCountsComeFromShardHeaders) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  io::write_compressed_dataset(ds, p, 5, dir_, "counts");
  const auto counts = io::shard_block_counts(dir_, "counts");
  const auto info = io::read_manifest(dir_, "counts");
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts, info.layout.blocks_per_shard);
  std::size_t total = 0;
  for (auto n : counts) total += n;
  EXPECT_EQ(total, ds.num_blocks);
}

TEST_F(CompressedFileTest, ReadBlocksPartialRanges) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  io::write_compressed_dataset(ds, p, 4, dir_, "part");
  const std::size_t bs = ds.shape.block_size();
  const auto full = io::read_compressed_dataset(dir_, "part");
  // Ranges within one shard, across shard boundaries, and the whole set.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 1},
      {3, 2},
      {ds.num_blocks / 4 - 1, 3},  // straddles shard 0 -> 1
      {0, ds.num_blocks}};
  for (const auto& [first, count] : ranges) {
    const auto part = io::read_blocks(dir_, "part", first, count);
    ASSERT_EQ(part.size(), count * bs) << first << "+" << count;
    for (std::size_t i = 0; i < part.size(); ++i) {
      ASSERT_EQ(part[i], full.values[first * bs + i]) << first;
    }
  }
  EXPECT_THROW(io::read_blocks(dir_, "part", ds.num_blocks, 1),
               std::out_of_range);
  EXPECT_THROW(io::read_blocks(dir_, "part", 0, ds.num_blocks + 1),
               std::out_of_range);
}

TEST_F(CompressedFileTest, ReaderIgnoresCorruptManifestLayout) {
  // The manifest's per-shard layout line is advisory: readers derive
  // block counts from the shard stream headers.  Corrupt the layout
  // (keeping the total) and the dataset must still load correctly.
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  io::write_compressed_dataset(ds, p, 3, dir_, "lied");
  const auto info = io::read_manifest(dir_, "lied");
  std::ostringstream mf;
  mf << "PaSTRIshards v1\n" << info.label << "\n";
  mf << info.shape.n[0] << " " << info.shape.n[1] << " " << info.shape.n[2]
     << " " << info.shape.n[3] << "\n";
  mf << info.num_blocks << " " << info.layout.num_shards << "\n";
  // Shuffle all blocks into the "first shard" on paper.
  mf << info.num_blocks << " 0 0 \n";
  std::ofstream out(dir_ + "/lied.manifest", std::ios::trunc);
  out << mf.str();
  out.close();
  const auto back = io::read_compressed_dataset(dir_, "lied");
  EXPECT_EQ(back.num_blocks, ds.num_blocks);
  EXPECT_LE(max_abs_diff(ds.values, back.values),
            p.error_bound * (1 + 1e-12));
  const auto counts = io::shard_block_counts(dir_, "lied");
  std::size_t total = 0;
  for (auto n : counts) total += n;
  EXPECT_EQ(total, ds.num_blocks);
  EXPECT_NE(counts, io::read_manifest(dir_, "lied").layout.blocks_per_shard);
}

TEST_F(CompressedFileTest, ShardWriterBytesMatchBatchCompress) {
  // Streaming blocks into a shard must produce the exact bytes of a
  // one-shot compress of the same values, regardless of whether the
  // count is declared up-front or back-filled.
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  const auto reference = compress(ds.values, spec, p);
  for (const bool declare : {true, false}) {
    io::ShardWriter w(dir_, "one", 0, spec, p,
                      declare ? ds.num_blocks : kUnknownBlockCount);
    w.put_values(ds.values);
    EXPECT_EQ(w.blocks(), ds.num_blocks);
    EXPECT_EQ(w.finish(), reference.size());
    std::ifstream f(io::rank_file_path(dir_, "one", 0), std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes, reference) << "declare=" << declare;
  }
}

TEST_F(CompressedFileTest, ShardWriterAppendExtendsInPlace) {
  // Write half the blocks, finish, reopen in append mode, write the
  // rest: the final file must be byte-identical to one uninterrupted
  // stream of all blocks.
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  const std::size_t bs = ds.shape.block_size();
  const std::size_t half = ds.num_blocks / 2;
  Params p;
  {
    io::ShardWriter w(dir_, "grow", 0, spec, p);
    w.put_values(std::span<const double>(ds.values).first(half * bs));
    w.finish();
  }
  {
    io::ShardWriter w(dir_, "grow", 0, p);  // append
    EXPECT_EQ(w.blocks(), half);
    w.put_values(std::span<const double>(ds.values).subspan(half * bs));
    EXPECT_EQ(w.blocks(), ds.num_blocks);
    w.finish();
  }
  std::ifstream f(io::rank_file_path(dir_, "grow", 0), std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, compress(ds.values, spec, p));
}

TEST_F(CompressedFileTest, ShardWriterAppendRejectsLegacyAndMismatch) {
  const BlockSpec spec{4, 4};
  Params p;
  const std::vector<double> data(spec.block_size() * 3, 0.125);
  const std::string path = io::rank_file_path(dir_, "v2", 0);
  {
    io::ShardWriter w(dir_, "v2", 0, spec, p);
    w.put_values(data);
    w.finish();
  }
  // Params that disagree with the shard header cannot append: the
  // encoded blocks would not decode under the header's bound.
  Params other = p;
  other.error_bound = 1e-6;
  EXPECT_THROW(io::ShardWriter(dir_, "v2", 0, other),
               std::invalid_argument);

  // Rewrite the shard as a legacy v2 stream (no index to extend).
  auto stream = compress(data, spec, p);
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, stream.data() + stream.size() - 20, 8);
  stream.resize(index_offset);
  stream[4] = 2;  // kStreamVersionUnindexed
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(stream.data()),
            static_cast<std::streamsize>(stream.size()));
  }
  EXPECT_THROW(io::ShardWriter(dir_, "v2", 0, p), std::runtime_error);
}

TEST_F(CompressedFileTest, ShardedDatasetWriterMatchesBatchWriter) {
  // Blocks pushed one at a time through the streaming dataset writer
  // must produce files byte-identical to write_compressed_dataset.
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  const int kShards = 5;
  io::write_compressed_dataset(ds, p, kShards, dir_, "batch");
  {
    io::ShardedDatasetWriter w(dir_, "stream", ds.label, ds.shape,
                               ds.num_blocks, p, kShards);
    for (std::size_t b = 0; b < ds.num_blocks; ++b) {
      w.put_block(ds.block(b));
    }
    EXPECT_EQ(w.blocks_written(), ds.num_blocks);
    w.finish();
  }
  for (int s = 0; s < kShards; ++s) {
    std::ifstream fa(io::rank_file_path(dir_, "batch", s),
                     std::ios::binary);
    std::ifstream fb(io::rank_file_path(dir_, "stream", s),
                     std::ios::binary);
    const std::vector<char> a((std::istreambuf_iterator<char>(fa)),
                              std::istreambuf_iterator<char>());
    const std::vector<char> b((std::istreambuf_iterator<char>(fb)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(a, b) << "shard " << s;
  }
  const auto back = io::read_compressed_dataset(dir_, "stream");
  EXPECT_EQ(back.num_blocks, ds.num_blocks);
  EXPECT_LE(max_abs_diff(ds.values, back.values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(CompressedFileTest, ShardedDatasetWriterEnforcesDeclaredCount) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  {
    io::ShardedDatasetWriter w(dir_, "over", ds.label, ds.shape,
                               2, p, 1);
    w.put_block(ds.block(0));
    w.put_block(ds.block(1));
    EXPECT_THROW(w.put_block(ds.block(2)), std::runtime_error);
  }
  {
    io::ShardedDatasetWriter w(dir_, "under", ds.label, ds.shape,
                               3, p, 2);
    w.put_block(ds.block(0));
    EXPECT_THROW(w.finish(), std::runtime_error);
  }
}

TEST_F(CompressedFileTest, MissingManifestThrows) {
  EXPECT_THROW(io::read_compressed_dataset(dir_, "nothing"),
               std::runtime_error);
}

TEST_F(CompressedFileTest, RejectsBadShardCount) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  EXPECT_THROW(io::write_compressed_dataset(ds, p, 0, dir_, "x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace pastri
