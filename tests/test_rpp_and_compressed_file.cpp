// Tests for the reduced-precision-pack baseline (paper ref. [19]) and
// the sharded compressed-dataset container.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "compressors/rpp/rpp.h"
#include "io/compressed_file.h"
#include "test_util.h"

namespace pastri {
namespace {

using testutil::max_abs_diff;

TEST(Rpp, RoundTripWithinBound) {
  const auto data = testutil::random_doubles(10000, -1.0, 1.0, 3);
  for (double eb : {1e-6, 1e-10, 1e-13}) {
    const auto back =
        baselines::rpp_decompress(baselines::rpp_compress(data, eb));
    ASSERT_EQ(back.size(), data.size());
    EXPECT_LE(max_abs_diff(data, back), eb) << eb;
  }
}

TEST(Rpp, EriDataWithinBound) {
  const auto& ds = testutil::small_eri_dataset();
  const auto back = baselines::rpp_decompress(
      baselines::rpp_compress(ds.values, 1e-10));
  EXPECT_LE(max_abs_diff(ds.values, back), 1e-10);
}

TEST(Rpp, RatioInPaperBand) {
  // Section II: a customized real-number format reaches only ~1.5-2.5x
  // on data whose magnitudes sit well above the bound.  Uniform values
  // in [0.5, 1] at EB=1e-10 need sign+exp+~33 mantissa bits ~= 45 bits.
  const auto data = testutil::random_doubles(20000, 0.5, 1.0, 7);
  const auto stream = baselines::rpp_compress(data, 1e-10);
  const double ratio =
      static_cast<double>(data.size() * 8) / stream.size();
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 2.6);
}

TEST(Rpp, TinyValuesCollapse) {
  const std::vector<double> data(5000, 1e-14);
  const auto stream = baselines::rpp_compress(data, 1e-10);
  EXPECT_LT(stream.size(), 700u + 32);  // ~1 bit per value
  for (double v : baselines::rpp_decompress(stream)) EXPECT_EQ(v, 0.0);
}

TEST(Rpp, Rejections) {
  EXPECT_THROW(baselines::rpp_compress({}, 0.0), std::invalid_argument);
  auto stream = baselines::rpp_compress(std::vector<double>(4, 1.0), 1e-9);
  stream[0] ^= 0x7;
  EXPECT_THROW(baselines::rpp_decompress(stream), std::runtime_error);
}

class CompressedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "pastri_cfile_test")
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(CompressedFileTest, RoundTripSingleShard) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  const std::size_t bytes =
      io::write_compressed_dataset(ds, p, 1, dir_, "ds");
  EXPECT_LT(bytes, ds.size_bytes());
  const auto back = io::read_compressed_dataset(dir_, "ds");
  EXPECT_EQ(back.label, ds.label);
  EXPECT_EQ(back.shape, ds.shape);
  EXPECT_EQ(back.num_blocks, ds.num_blocks);
  EXPECT_LE(max_abs_diff(ds.values, back.values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(CompressedFileTest, RoundTripManyShards) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  io::write_compressed_dataset(ds, p, 7, dir_, "sharded");
  const auto info = io::read_manifest(dir_, "sharded");
  EXPECT_EQ(info.layout.num_shards, 7u);
  std::size_t total = 0;
  for (auto n : info.layout.blocks_per_shard) total += n;
  EXPECT_EQ(total, ds.num_blocks);
  const auto back = io::read_compressed_dataset(dir_, "sharded");
  EXPECT_LE(max_abs_diff(ds.values, back.values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(CompressedFileTest, MoreShardsThanBlocks) {
  qc::EriDataset tiny;
  tiny.label = "tiny";
  tiny.shape.n = {1, 1, 2, 2};
  tiny.num_blocks = 3;
  tiny.values = {1e-3, 2e-3, 3e-3, 4e-3, 0, 0, 0, 0, -1e-5, 0, 1e-5, 2e-5};
  Params p;
  io::write_compressed_dataset(tiny, p, 8, dir_, "tiny");
  const auto back = io::read_compressed_dataset(dir_, "tiny");
  EXPECT_EQ(back.num_blocks, 3u);
  EXPECT_LE(max_abs_diff(tiny.values, back.values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(CompressedFileTest, ShardBlockCountsComeFromShardHeaders) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  io::write_compressed_dataset(ds, p, 5, dir_, "counts");
  const auto counts = io::shard_block_counts(dir_, "counts");
  const auto info = io::read_manifest(dir_, "counts");
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts, info.layout.blocks_per_shard);
  std::size_t total = 0;
  for (auto n : counts) total += n;
  EXPECT_EQ(total, ds.num_blocks);
}

TEST_F(CompressedFileTest, ReadBlocksPartialRanges) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  io::write_compressed_dataset(ds, p, 4, dir_, "part");
  const std::size_t bs = ds.shape.block_size();
  const auto full = io::read_compressed_dataset(dir_, "part");
  // Ranges within one shard, across shard boundaries, and the whole set.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 1},
      {3, 2},
      {ds.num_blocks / 4 - 1, 3},  // straddles shard 0 -> 1
      {0, ds.num_blocks}};
  for (const auto& [first, count] : ranges) {
    const auto part = io::read_blocks(dir_, "part", first, count);
    ASSERT_EQ(part.size(), count * bs) << first << "+" << count;
    for (std::size_t i = 0; i < part.size(); ++i) {
      ASSERT_EQ(part[i], full.values[first * bs + i]) << first;
    }
  }
  EXPECT_THROW(io::read_blocks(dir_, "part", ds.num_blocks, 1),
               std::out_of_range);
  EXPECT_THROW(io::read_blocks(dir_, "part", 0, ds.num_blocks + 1),
               std::out_of_range);
}

TEST_F(CompressedFileTest, ReaderIgnoresCorruptManifestLayout) {
  // The manifest's per-shard layout line is advisory: readers derive
  // block counts from the shard stream headers.  Corrupt the layout
  // (keeping the total) and the dataset must still load correctly.
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  io::write_compressed_dataset(ds, p, 3, dir_, "lied");
  const auto info = io::read_manifest(dir_, "lied");
  std::ostringstream mf;
  mf << "PaSTRIshards v1\n" << info.label << "\n";
  mf << info.shape.n[0] << " " << info.shape.n[1] << " " << info.shape.n[2]
     << " " << info.shape.n[3] << "\n";
  mf << info.num_blocks << " " << info.layout.num_shards << "\n";
  // Shuffle all blocks into the "first shard" on paper.
  mf << info.num_blocks << " 0 0 \n";
  std::ofstream out(dir_ + "/lied.manifest", std::ios::trunc);
  out << mf.str();
  out.close();
  const auto back = io::read_compressed_dataset(dir_, "lied");
  EXPECT_EQ(back.num_blocks, ds.num_blocks);
  EXPECT_LE(max_abs_diff(ds.values, back.values),
            p.error_bound * (1 + 1e-12));
  const auto counts = io::shard_block_counts(dir_, "lied");
  std::size_t total = 0;
  for (auto n : counts) total += n;
  EXPECT_EQ(total, ds.num_blocks);
  EXPECT_NE(counts, io::read_manifest(dir_, "lied").layout.blocks_per_shard);
}

TEST_F(CompressedFileTest, MissingManifestThrows) {
  EXPECT_THROW(io::read_compressed_dataset(dir_, "nothing"),
               std::runtime_error);
}

TEST_F(CompressedFileTest, RejectsBadShardCount) {
  const auto& ds = testutil::small_eri_dataset();
  Params p;
  EXPECT_THROW(io::write_compressed_dataset(ds, p, 0, dir_, "x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace pastri
