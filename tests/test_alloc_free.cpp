// Allocation accounting for the block codec hot path.  Overriding the
// global operator new in this TU counts every heap allocation the
// process makes; after a warm-up pass that sizes the CodecWorkspace and
// the driver arenas, steady-state compress/decompress must allocate
// nothing per block (workspace loops: exactly zero; streaming drivers:
// amortized container growth only, far below one allocation per block).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "core/pastri.h"
#include "core/simd/simd.h"
#include "core/stream.h"
#include "qc/eri_engine.h"
#include "qc/molecule.h"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

// The replacement allocator pairs new with malloc/free on purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace pastri {
namespace {

constexpr BlockSpec kSpec{.num_sub_blocks = 36, .sub_block_size = 36};

/// ERI-like blocks: scaled copies of a pattern plus noise large enough
/// to force dense ECQ payloads (the hot decode path).
std::vector<double> make_blocks(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> data(count * kSpec.block_size());
  for (std::size_t b = 0; b < count; ++b) {
    double pattern[36];
    for (double& p : pattern) p = unit(gen);
    for (std::size_t j = 0; j < kSpec.num_sub_blocks; ++j) {
      const double scale = unit(gen);
      for (std::size_t i = 0; i < kSpec.sub_block_size; ++i) {
        data[b * kSpec.block_size() + j * kSpec.sub_block_size + i] =
            scale * pattern[i] + 2e-9 * unit(gen);
      }
    }
  }
  return data;
}

std::size_t allocations_since(std::size_t mark) {
  return g_alloc_count.load(std::memory_order_relaxed) - mark;
}

TEST(AllocFree, CompressBlockSteadyStateAllocatesNothing) {
  const std::size_t n = 64;
  const auto data = make_blocks(n, 11);
  Params params;
  CodecWorkspace ws;
  bitio::BitWriter w;

  auto block = [&](std::size_t b) {
    return std::span<const double>(data).subspan(b * kSpec.block_size(),
                                                 kSpec.block_size());
  };
  // Warm pass over every block: sizes the workspace, grows the writer
  // buffer to the largest payload, and builds any lazy statics (metric
  // registry shards, decode LUTs).  The measured second pass is the
  // steady state.
  for (std::size_t b = 0; b < n; ++b) {
    w.restart();
    compress_block(block(b), kSpec, params, w, &ws.stats, ws);
  }

  const std::size_t mark = g_alloc_count.load();
  for (std::size_t b = 0; b < n; ++b) {
    w.restart();
    compress_block(block(b), kSpec, params, w, &ws.stats, ws);
    (void)w.finish_view();
  }
  EXPECT_EQ(allocations_since(mark), 0u)
      << "compress_block allocated in steady state";
}

TEST(AllocFree, DecompressBlockSteadyStateAllocatesNothing) {
  const std::size_t n = 64;
  const auto data = make_blocks(n, 12);
  Params params;
  CodecWorkspace ws;
  bitio::BitWriter w;

  std::vector<std::vector<std::uint8_t>> payloads(n);
  for (std::size_t b = 0; b < n; ++b) {
    w.restart();
    compress_block(std::span<const double>(data).subspan(
                       b * kSpec.block_size(), kSpec.block_size()),
                   kSpec, params, w, nullptr, ws);
    const auto view = w.finish_view();
    payloads[b].assign(view.begin(), view.end());
  }

  std::vector<double> out(kSpec.block_size());
  for (std::size_t b = 0; b < n; ++b) {  // warm pass
    bitio::BitReader r(payloads[b]);
    decompress_block(r, kSpec, params, out, ws);
  }
  const std::size_t mark = g_alloc_count.load();
  for (std::size_t b = 0; b < n; ++b) {
    bitio::BitReader r(payloads[b]);
    decompress_block(r, kSpec, params, out, ws);
  }
  EXPECT_EQ(allocations_since(mark), 0u)
      << "decompress_block allocated in steady state";
}

/// Backends this binary can actually execute (scalar + every supported
/// vector tier); the alloc contract must hold on all of them.
std::vector<simd::Backend> runnable_backends() {
  std::vector<simd::Backend> v{simd::Backend::Scalar};
  for (simd::Backend b : {simd::Backend::Avx2, simd::Backend::Avx512,
                          simd::Backend::Neon}) {
    if (simd::backend_supported(b)) v.push_back(b);
  }
  return v;
}

/// Blocks whose ECQ payload is a handful of large outliers in an
/// otherwise exact scaled pattern -- the geometry that makes the
/// planner pick the sparse (index,value) representation, so decode
/// exercises unpack_pairs + scatter_ecq and the workspace sparse_idx /
/// sparse_val arrays.
std::vector<double> make_sparse_blocks(std::size_t count,
                                       std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> data(count * kSpec.block_size());
  for (std::size_t b = 0; b < count; ++b) {
    double pattern[36];
    for (double& p : pattern) p = 1e-6 * (1.0 + 0.5 * unit(gen));
    for (std::size_t j = 0; j < kSpec.num_sub_blocks; ++j) {
      const double scale = 0.25 + 0.5 * (static_cast<double>(j) / 36.0);
      for (std::size_t i = 0; i < kSpec.sub_block_size; ++i) {
        double v = scale * pattern[i];
        if ((j * 36 + i + b) % 331 == 0) v += 1e-3 * unit(gen);
        data[b * kSpec.block_size() + j * kSpec.sub_block_size + i] = v;
      }
    }
  }
  return data;
}

/// Steady-state decompress_block allocates nothing on ANY backend, for
/// dense-ECQ and sparse-ECQ payloads alike (the sparse path's
/// (idx,val) scratch lives in the workspace and is warmed by the first
/// pass, like every other array).
TEST(AllocFree, DecompressBlockAllocFreeOnEveryBackendBothEcqPaths) {
  const std::size_t n = 32;
  Params params;
  CodecWorkspace ws;
  bitio::BitWriter w;

  std::vector<std::vector<std::uint8_t>> payloads;
  for (const auto& data : {make_blocks(n, 21), make_sparse_blocks(n, 22)}) {
    for (std::size_t b = 0; b < n; ++b) {
      w.restart();
      compress_block(std::span<const double>(data).subspan(
                         b * kSpec.block_size(), kSpec.block_size()),
                     kSpec, params, w, nullptr, ws);
      const auto view = w.finish_view();
      payloads.emplace_back(view.begin(), view.end());
    }
  }

  std::vector<double> out(kSpec.block_size());
  for (simd::Backend backend : runnable_backends()) {
    simd::force_backend(backend);
    for (const auto& payload : payloads) {  // warm pass
      bitio::BitReader r(payload);
      decompress_block(r, kSpec, params, out, ws);
    }
    const std::size_t mark = g_alloc_count.load();
    for (const auto& payload : payloads) {
      bitio::BitReader r(payload);
      decompress_block(r, kSpec, params, out, ws);
    }
    EXPECT_EQ(allocations_since(mark), 0u)
        << "decompress_block allocated in steady state on backend "
        << simd::backend_name(backend);
  }
  simd::refresh_backend_from_env();
}

TEST(AllocFree, StreamWriterSteadyStateBatchesAllocateFarBelowPerBlock) {
  const std::size_t batch = 16;
  const std::size_t n = 8 * batch;
  const std::size_t warm = 2 * batch;
  const auto data = make_blocks(n, 13);
  Params params;
  params.num_threads = 2;

  VectorSink sink;
  StreamWriter writer(sink, kSpec, params,
                      {.batch_blocks = batch, .expected_blocks = n});
  auto block = [&](std::size_t b) {
    return std::span<const double>(data).subspan(b * kSpec.block_size(),
                                                 kSpec.block_size());
  };
  // First batches are the cold path: workspaces, arenas (which may still
  // rebalance across threads on batch two), sink buffer.
  for (std::size_t b = 0; b < warm; ++b) writer.put_block(block(b));

  const std::size_t mark = g_alloc_count.load();
  for (std::size_t b = warm; b < n; ++b) writer.put_block(block(b));
  const std::size_t measured = n - warm;
  const std::size_t allocs = allocations_since(mark);
  // Amortized growth of the sink buffer and the offset table is allowed;
  // per-block payload/scratch allocation is not.
  EXPECT_LT(allocs, measured / 8)
      << allocs << " allocations over " << measured << " blocks";

  writer.finish();
  // The workspace/arena rewrite must not change the container bytes.
  EXPECT_EQ(sink.take(), compress(data, kSpec, params));
}

TEST(AllocFree, StreamConsumerSteadyStateBatchesAllocateFarBelowPerBlock) {
  const std::size_t batch = 16;
  const std::size_t n = 4 * batch;
  const auto data = make_blocks(n, 14);
  Params params;
  params.num_threads = 2;
  const auto stream = compress(data, kSpec, params);

  SpanSource source(stream);
  StreamConsumer consumer(source,
                          {.batch_blocks = batch, .num_threads = 2});
  std::vector<double> out(n * kSpec.block_size());
  // Cold batch: decode buffers, extents, workspaces.
  ASSERT_EQ(consumer.read_blocks(
                std::span<double>(out).first(batch * kSpec.block_size())),
            batch);

  const std::size_t mark = g_alloc_count.load();
  ASSERT_EQ(consumer.read_blocks(
                std::span<double>(out).subspan(batch * kSpec.block_size())),
            n - batch);
  const std::size_t measured = n - batch;
  const std::size_t allocs = allocations_since(mark);
  EXPECT_LT(allocs, measured / 4)
      << allocs << " allocations over " << measured << " blocks";
  // Decode is deterministic: the chunked path must equal the one-shot.
  EXPECT_EQ(out, decompress(stream));
}

/// The consumer chunk loop keeps the amortized-allocation contract on
/// every backend tier (the bulk decode kernels draw all their scratch
/// from the per-thread workspaces).
TEST(AllocFree, StreamConsumerChunkLoopAllocLeanOnEveryBackend) {
  const std::size_t batch = 16;
  const std::size_t n = 4 * batch;
  const auto data = make_blocks(n, 15);
  Params params;
  params.num_threads = 2;
  const auto stream = compress(data, kSpec, params);
  const auto want = decompress(stream);

  for (simd::Backend backend : runnable_backends()) {
    simd::force_backend(backend);
    SpanSource source(stream);
    StreamConsumer consumer(source,
                            {.batch_blocks = batch, .num_threads = 2});
    std::vector<double> out(n * kSpec.block_size());
    ASSERT_EQ(consumer.read_blocks(std::span<double>(out).first(
                  batch * kSpec.block_size())),
              batch);
    const std::size_t mark = g_alloc_count.load();
    ASSERT_EQ(consumer.read_blocks(std::span<double>(out).subspan(
                  batch * kSpec.block_size())),
              n - batch);
    const std::size_t measured = n - batch;
    const std::size_t allocs = allocations_since(mark);
    EXPECT_LT(allocs, measured / 4)
        << allocs << " allocations over " << measured << " blocks on "
        << simd::backend_name(backend);
    EXPECT_EQ(out, want) << simd::backend_name(backend);
  }
  simd::refresh_backend_from_env();
}

/// The ERI generation hot path: once the shell-pair cache is built
/// (plan) and the thread-local workspaces are warm (first pass), the
/// steady-state quartet loop draws everything -- HermiteR tensor,
/// Schwarz scratch, term arenas -- from preallocated storage.  The
/// bound is amortized rather than exactly zero only because the OpenMP
/// runtime may allocate per-parallel-region bookkeeping (team/task
/// structs), which is per compute_range call, not per block.
TEST(AllocFree, EriGenerationSteadyStateAllocatesFarBelowPerBlock) {
  const qc::Molecule mol = qc::make_molecule("benzene");
  qc::DatasetOptions opt;
  opt.config = qc::parse_config("(dd|dd)");
  opt.max_blocks = 48;
  const qc::EriBlockGenerator gen(mol, opt);
  const std::size_t n = gen.meta().num_blocks;
  const std::size_t bs = gen.meta().shape.block_size();
  ASSERT_EQ(n, 48u);
  std::vector<double> out(n * bs);

  // Warm pass: sizes each thread's workspace for this momentum class.
  gen.compute_range(0, n, out);

  const std::size_t passes = 4;
  const std::size_t mark = g_alloc_count.load();
  for (std::size_t p = 0; p < passes; ++p) gen.compute_range(0, n, out);
  const std::size_t measured = passes * n;
  const std::size_t allocs = allocations_since(mark);
  EXPECT_LT(allocs, measured / 8)
      << allocs << " allocations over " << measured << " generated blocks";
}

}  // namespace
}  // namespace pastri
