// Independent validation of the one-electron integrals against direct
// numerical quadrature -- no shared code path with the McMurchie-
// Davidson implementation beyond the shell definitions.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "qc/one_electron.h"
#include "qc/sto3g.h"

namespace pastri::qc {
namespace {

/// Evaluate a contracted Cartesian basis function at a point.
double evaluate_bf(const Shell& sh, const CartComponent& comp,
                   const Vec3& r) {
  const double dx = r[0] - sh.center[0];
  const double dy = r[1] - sh.center[1];
  const double dz = r[2] - sh.center[2];
  const double r2 = dx * dx + dy * dy + dz * dz;
  double radial = 0.0;
  for (const auto& p : sh.primitives) {
    radial += p.coefficient * std::exp(-p.exponent * r2);
  }
  return component_norm_ratio(sh.l, comp) * std::pow(dx, comp.lx) *
         std::pow(dy, comp.ly) * std::pow(dz, comp.lz) * radial;
}

/// Midpoint-rule 3-D quadrature over a cube [-L, L]^3.
double quadrature(const std::function<double(const Vec3&)>& f, double L,
                  int n) {
  const double h = 2.0 * L / n;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        const Vec3 r{-L + (i + 0.5) * h, -L + (j + 0.5) * h,
                     -L + (k + 0.5) * h};
        sum += f(r);
      }
    }
  }
  return sum * h * h * h;
}

TEST(OneElectronQuadrature, OverlapMatrixMatchesIntegration) {
  // H2-like pair of shells, one s one p, off-center.
  Shell s1;
  s1.l = 0;
  s1.center = {0.2, -0.1, 0.3};
  s1.primitives = {{0.9, 1.0}};
  s1.normalize();
  Shell p1;
  p1.l = 1;
  p1.center = {-0.4, 0.5, -0.2};
  p1.primitives = {{1.1, 1.0}};
  p1.normalize();

  BasisSet basis;
  basis.shells = {s1, p1};
  const Matrix S = overlap_matrix(basis);

  const auto comps_p = cartesian_components(1);
  // <s|s>
  EXPECT_NEAR(S(0, 0),
              quadrature(
                  [&](const Vec3& r) {
                    const double v = evaluate_bf(s1, {0, 0, 0}, r);
                    return v * v;
                  },
                  7.0, 90),
              2e-5);
  // <s|p_y>
  EXPECT_NEAR(S(0, 2),
              quadrature(
                  [&](const Vec3& r) {
                    return evaluate_bf(s1, {0, 0, 0}, r) *
                           evaluate_bf(p1, comps_p[1], r);
                  },
                  7.0, 90),
              2e-5);
}

TEST(OneElectronQuadrature, KineticDiagonalMatchesIntegration) {
  // T_ii = 1/2 int |grad phi|^2 (integration by parts), evaluated by
  // central finite differences of the basis function.
  Shell s1;
  s1.l = 0;
  s1.center = {0.0, 0.0, 0.0};
  s1.primitives = {{0.8, 1.0}};
  s1.normalize();
  BasisSet basis;
  basis.shells = {s1};
  const Matrix T = kinetic_matrix(basis);

  const double eps = 1e-5;
  const auto grad2 = [&](const Vec3& r) {
    double g2 = 0.0;
    for (int d = 0; d < 3; ++d) {
      Vec3 rp = r, rm = r;
      rp[d] += eps;
      rm[d] -= eps;
      const double g = (evaluate_bf(s1, {0, 0, 0}, rp) -
                        evaluate_bf(s1, {0, 0, 0}, rm)) /
                       (2 * eps);
      g2 += g * g;
    }
    return 0.5 * g2;
  };
  EXPECT_NEAR(T(0, 0), quadrature(grad2, 7.0, 80), 5e-4);
}

TEST(OneElectronQuadrature, NuclearAttractionMatchesIntegration) {
  // V_ii = -Z int |phi|^2 / |r - R_C|; the integrable singularity is
  // handled adequately by the midpoint rule away from grid nodes.
  Shell s1;
  s1.l = 0;
  s1.center = {0.0, 0.0, 0.0};
  s1.primitives = {{1.0, 1.0}};
  s1.normalize();
  BasisSet basis;
  basis.shells = {s1};
  Molecule mol;
  mol.name = "probe";
  mol.atoms = {{"H", 1, {0.9, 0.4, -0.3}}};  // nucleus off the origin
  const Matrix V = nuclear_attraction_matrix(basis, mol);

  const Vec3 C = mol.atoms[0].position;
  const double quad = quadrature(
      [&](const Vec3& r) {
        const double v = evaluate_bf(s1, {0, 0, 0}, r);
        const double d = std::sqrt(dist2(r, C));
        return -v * v / std::max(d, 1e-8);
      },
      7.0, 110);
  EXPECT_NEAR(V(0, 0), quad, 5e-3);
}

}  // namespace
}  // namespace pastri::qc
