// Tests for the canonical Huffman codec used by the SZ-style baseline.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "compressors/huffman.h"

namespace pastri::baselines {
namespace {

std::vector<std::uint32_t> sample_symbols(
    const std::vector<std::uint64_t>& freq, std::size_t n,
    std::uint64_t seed) {
  std::vector<double> weights(freq.begin(), freq.end());
  std::discrete_distribution<std::uint32_t> dist(weights.begin(),
                                                 weights.end());
  std::mt19937_64 gen(seed);
  std::vector<std::uint32_t> out(n);
  for (auto& s : out) s = dist(gen);
  return out;
}

TEST(Huffman, RoundTripUniform) {
  std::vector<std::uint64_t> freq(16, 10);
  const auto codec = HuffmanCodec::from_frequencies(freq);
  const auto symbols = sample_symbols(freq, 1000, 1);
  bitio::BitWriter w;
  for (auto s : symbols) codec.encode(w, s);
  const auto bytes = w.take();
  bitio::BitReader r(bytes);
  for (auto s : symbols) ASSERT_EQ(codec.decode(r), s);
}

TEST(Huffman, RoundTripSkewed) {
  std::vector<std::uint64_t> freq{100000, 5000, 5000, 100, 100, 7, 3, 1};
  const auto codec = HuffmanCodec::from_frequencies(freq);
  const auto symbols = sample_symbols(freq, 5000, 2);
  bitio::BitWriter w;
  for (auto s : symbols) codec.encode(w, s);
  const auto bytes = w.take();
  bitio::BitReader r(bytes);
  for (auto s : symbols) ASSERT_EQ(codec.decode(r), s);
}

TEST(Huffman, SkewedCodesAreShorterForFrequentSymbols) {
  std::vector<std::uint64_t> freq{1000000, 1000, 1000, 10, 10, 1, 1, 1};
  const auto codec = HuffmanCodec::from_frequencies(freq);
  EXPECT_LT(codec.code_length(0), codec.code_length(5));
  EXPECT_LE(codec.code_length(1), codec.code_length(3));
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freq(64, 0);
  freq[42] = 999;
  const auto codec = HuffmanCodec::from_frequencies(freq);
  EXPECT_EQ(codec.code_length(42), 1u);
  bitio::BitWriter w;
  for (int i = 0; i < 10; ++i) codec.encode(w, 42);
  const auto bytes = w.take();
  bitio::BitReader r(bytes);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(codec.decode(r), 42u);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint64_t> freq{3, 0, 0, 7};
  const auto codec = HuffmanCodec::from_frequencies(freq);
  EXPECT_EQ(codec.code_length(0), 1u);
  EXPECT_EQ(codec.code_length(3), 1u);
  EXPECT_EQ(codec.code_length(1), 0u);  // no code
}

TEST(Huffman, SerializationRoundTrip) {
  std::vector<std::uint64_t> freq(256, 0);
  freq[0] = 10000;
  freq[10] = 500;
  freq[200] = 500;
  freq[255] = 3;
  const auto codec = HuffmanCodec::from_frequencies(freq);
  bitio::BitWriter w;
  codec.serialize(w);
  const auto symbols = sample_symbols(freq, 2000, 3);
  for (auto s : symbols) codec.encode(w, s);
  const auto bytes = w.take();

  bitio::BitReader r(bytes);
  const auto rebuilt = HuffmanCodec::from_stream(r);
  EXPECT_EQ(rebuilt.alphabet_size(), codec.alphabet_size());
  for (auto s : symbols) ASSERT_EQ(rebuilt.decode(r), s);
}

TEST(Huffman, CompressionNearEntropy) {
  // For a heavily skewed distribution the average code length must land
  // near the Shannon entropy (within half a bit, Huffman's bound).
  std::vector<std::uint64_t> freq{900, 50, 25, 12, 6, 3, 2, 2};
  const auto codec = HuffmanCodec::from_frequencies(freq);
  double total = 0, entropy = 0, avg_len = 0;
  for (auto f : freq) total += static_cast<double>(f);
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] == 0) continue;
    const double p = static_cast<double>(freq[s]) / total;
    entropy -= p * std::log2(p);
    avg_len += p * codec.code_length(static_cast<std::uint32_t>(s));
  }
  EXPECT_GE(avg_len, entropy - 1e-9);
  EXPECT_LE(avg_len, entropy + 1.0);
}

TEST(Huffman, KraftInequalityHolds) {
  std::mt19937_64 gen(9);
  std::vector<std::uint64_t> freq(512);
  for (auto& f : freq) f = gen() % 1000;
  const auto codec = HuffmanCodec::from_frequencies(freq);
  double kraft = 0;
  for (std::uint32_t s = 0; s < freq.size(); ++s) {
    if (codec.code_length(s) > 0) {
      kraft += std::ldexp(1.0, -static_cast<int>(codec.code_length(s)));
    }
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(Huffman, DictionaryBitsPositive) {
  std::vector<std::uint64_t> freq(65536, 0);
  freq[32768] = 100;
  freq[32769] = 50;
  const auto codec = HuffmanCodec::from_frequencies(freq);
  // Sparse 2^16 alphabet must serialize compactly (zero-run RLE).
  EXPECT_GT(codec.dictionary_bits(), 0u);
  EXPECT_LT(codec.dictionary_bits(), 1000u);
}

TEST(Huffman, EmptyFrequencies) {
  std::vector<std::uint64_t> freq(8, 0);
  const auto codec = HuffmanCodec::from_frequencies(freq);
  for (std::uint32_t s = 0; s < 8; ++s) EXPECT_EQ(codec.code_length(s), 0u);
}

}  // namespace
}  // namespace pastri::baselines
