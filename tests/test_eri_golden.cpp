// Golden pins for the ERI compute stage.  The shell-pair cache, the
// flattened term arenas, the sign-folded coefficients, and the
// workspace-threaded kernels are all refactors of the same FP operations
// in the same order -- so the generated datasets must be BIT-identical
// to the original per-quartet implementation.  These digests were
// captured from the pre-cache engine and must never change on the
// default (exact-Boys) path; any drift means a transformation stopped
// being value-preserving.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "qc/basis.h"
#include "qc/eri_engine.h"
#include "qc/md_eri.h"
#include "qc/molecule.h"

namespace pastri::qc {
namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t values_digest(const EriDataset& ds) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(ds.values.data());
  return fnv1a({p, ds.values.size() * sizeof(double)});
}

std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

TEST(EriGolden, DatasetDigestsMatchSeed) {
  // Benzene, max_blocks = 12, contraction 1..3, four configs covering
  // pure-d, pure-f, and the two hybrid shapes whose schwarz stride
  // differs from the dataset stride (exercising set_r_stride
  // re-linearization).
  struct Case {
    const char* config;
    int contraction;
    std::uint64_t digest;
  };
  const Case cases[] = {
      {"(dd|dd)", 1, 0x77204e7a4bce188full},
      {"(dd|dd)", 2, 0x33bde022f7118dafull},
      {"(dd|dd)", 3, 0x18ff57eb77d27186ull},
      {"(ff|ff)", 1, 0x4058ddfa0333887dull},
      {"(ff|ff)", 2, 0x078f941496d46daaull},
      {"(ff|ff)", 3, 0x99979b1667df81ceull},
      {"(df|fd)", 1, 0x1522a9af72408a6aull},
      {"(df|fd)", 2, 0xe6ff6a86bb168768ull},
      {"(df|fd)", 3, 0xff30d3055eada7f0ull},
      {"(dd|ff)", 1, 0xf42239e8339d493cull},
      {"(dd|ff)", 2, 0x679e2a7ea0c88fd7ull},
      {"(dd|ff)", 3, 0xf0b8830ce110ac5dull},
  };
  const Molecule mol = make_molecule("benzene");
  for (const Case& c : cases) {
    DatasetOptions opt;
    opt.config = parse_config(c.config);
    opt.contraction = c.contraction;
    opt.max_blocks = 12;
    const EriDataset ds = generate_eri_dataset(mol, opt);
    EXPECT_EQ(values_digest(ds), c.digest)
        << c.config << " contraction=" << c.contraction;
  }
}

TEST(EriGolden, SchwarzBoundBitsMatchSeed) {
  // schwarz_bound now routes through the pair cache with the stride set
  // for the diagonal quartet (2 * l_sum); the bound must stay bitwise
  // what the uncached engine produced.
  struct Case {
    int l;
    int contraction;
    std::uint64_t q01, q23;
  };
  const Case cases[] = {
      {2, 1, 0x3fdd44ee0f5a050bull, 0x3fdd44ee0f5a050bull},
      {2, 3, 0x3fe60c5367249cbeull, 0x3fe60c5367249cbeull},
      {3, 1, 0x3fd8de084d656813ull, 0x3fd8de084d656813ull},
      {3, 3, 0x3fe507bb5c69568cull, 0x3fe507bb5c69568cull},
  };
  const Molecule mol = make_molecule("benzene");
  for (const Case& c : cases) {
    BasisOptions bo;
    bo.l = c.l;
    bo.contraction = c.contraction;
    const BasisSet bs = make_basis(mol, bo);
    EXPECT_EQ(bits(schwarz_bound(bs.shells[0], bs.shells[1])), c.q01)
        << "l=" << c.l << " c=" << c.contraction;
    EXPECT_EQ(bits(schwarz_bound(bs.shells[2], bs.shells[3])), c.q23)
        << "l=" << c.l << " c=" << c.contraction;
  }
}

TEST(EriGolden, CachedPairPathMatchesShellOverloadBitwise) {
  // Same quartet through (a) the convenience Shell-level overload, (b) a
  // fresh ShellPairData + workspace, and (c) the same pair objects and
  // workspace reused dirty after computing an unrelated quartet at a
  // different total momentum.  All three must agree to the bit.
  const Molecule mol = make_molecule("benzene");
  BasisOptions bo;
  bo.l = 3;
  bo.contraction = 2;
  const BasisSet bs = make_basis(mol, bo);
  const Shell &A = bs.shells[0], &B = bs.shells[1], &C = bs.shells[2],
              &D = bs.shells[3];
  const auto n = [](const Shell& s) {
    return static_cast<std::size_t>((s.l + 1) * (s.l + 2) / 2);
  };
  const std::size_t size = n(A) * n(B) * n(C) * n(D);

  std::vector<double> ref(size, 0.0);
  compute_eri_block(A, B, C, D, std::span<double>(ref));

  ShellPairData bra(A, B), ket(C, D);
  const int l_total = bra.l_sum() + ket.l_sum();
  bra.set_r_stride(l_total);
  ket.set_r_stride(l_total);
  EriWorkspace ws;
  std::vector<double> got(size, 0.0);
  compute_eri_block(bra, ket, ws, std::span<double>(got));
  for (std::size_t i = 0; i < size; ++i)
    ASSERT_EQ(bits(got[i]), bits(ref[i])) << "fresh workspace, i=" << i;
  EXPECT_GT(ws.boys_evals, 0u);

  // Dirty the workspace with a lower-momentum quartet (the HermiteR
  // tensor shrinks, then must re-grow without stale data leaking), plus
  // a schwarz call that reuses the diag scratch, then recompute.
  BasisOptions lo;
  lo.l = 2;
  lo.contraction = 1;
  const BasisSet small = make_basis(mol, lo);
  ShellPairData sp(small.shells[0], small.shells[1]);
  sp.set_r_stride(2 * sp.l_sum());
  (void)schwarz_bound(sp, ws);
  sp.set_r_stride(2 * sp.l_sum() + 1);  // different stride, then back
  sp.set_r_stride(2 * sp.l_sum());
  std::vector<double> tiny(sp.ncomp() * sp.ncomp(), 0.0);
  compute_eri_block(sp, sp, ws, std::span<double>(tiny));

  std::fill(got.begin(), got.end(), 0.0);
  compute_eri_block(bra, ket, ws, std::span<double>(got));
  for (std::size_t i = 0; i < size; ++i)
    ASSERT_EQ(bits(got[i]), bits(ref[i])) << "dirty workspace, i=" << i;
}

TEST(EriGolden, TabulatedBoysTracksExactPath) {
  // The opt-in fast Boys path is allowed to differ from the exact series
  // -- but only at the ~1e-14 interpolation level, far below any
  // compression error bound the pipeline would apply downstream.
  const Molecule mol = make_molecule("benzene");
  DatasetOptions opt;
  opt.config = parse_config("(ff|ff)");
  opt.contraction = 3;
  opt.max_blocks = 8;
  const EriDataset exact = generate_eri_dataset(mol, opt);
  opt.boys_mode = BoysMode::Table;
  const EriDataset table = generate_eri_dataset(mol, opt);
  ASSERT_EQ(table.values.size(), exact.values.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < exact.values.size(); ++i)
    max_diff = std::max(max_diff, std::abs(table.values[i] - exact.values[i]));
  EXPECT_LT(max_diff, 1e-10);
  EXPECT_GT(max_diff, 0.0);  // it is a genuinely different evaluation path
}

TEST(EriGolden, PairCacheAndBoysCountersAdvance) {
  const auto counter_value = [](const obs::MetricsSnapshot& snap,
                                std::string_view name) -> std::uint64_t {
    for (const auto& c : snap.counters)
      if (c.name == name) return c.value;
    ADD_FAILURE() << "counter not registered: " << name;
    return 0;
  };
  const auto before = obs::registry().snapshot();
  const Molecule mol = make_molecule("benzene");
  DatasetOptions opt;
  opt.config = parse_config("(dd|dd)");
  opt.max_blocks = 16;
  (void)generate_eri_dataset(mol, opt);
  const auto after = obs::registry().snapshot();

  const std::uint64_t misses =
      counter_value(after, obs::kQcShellPairCacheMisses) -
      counter_value(before, obs::kQcShellPairCacheMisses);
  const std::uint64_t hits = counter_value(after, obs::kQcShellPairCacheHits) -
                             counter_value(before, obs::kQcShellPairCacheHits);
  const std::uint64_t boys = counter_value(after, obs::kQcBoysEvals) -
                             counter_value(before, obs::kQcBoysEvals);
  EXPECT_GT(misses, 0u);
  // Every computed quartet is two cache uses; hits must dwarf the
  // one-time builds for any non-trivial block count.
  EXPECT_GT(hits, misses);
  EXPECT_GT(boys, 0u);
}

}  // namespace
}  // namespace pastri::qc
