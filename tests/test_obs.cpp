// Tests for the telemetry layer: registry semantics (sharding,
// capacity, enable/disable, reset), histogram bucket math, exporters,
// and end-to-end instrumentation through the codec.
#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "core/pastri.h"
#include "obs/export.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace {

using namespace pastri;

TEST(Obs, HistogramBucketMath) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  EXPECT_EQ(
      obs::histogram_bucket(std::numeric_limits<std::uint64_t>::max()),
      obs::kHistBuckets - 1);
  // Bounds are inclusive and consistent with the bucket function: every
  // value <= bound(i) with value > bound(i-1) lands in bucket i.
  EXPECT_EQ(obs::histogram_bucket_bound(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_bound(1), 1u);
  EXPECT_EQ(obs::histogram_bucket_bound(2), 3u);
  EXPECT_EQ(obs::histogram_bucket_bound(10), 1023u);
  for (std::size_t i = 0; i + 1 < obs::kHistBuckets; ++i) {
    EXPECT_EQ(obs::histogram_bucket(obs::histogram_bucket_bound(i)), i);
    EXPECT_EQ(obs::histogram_bucket(obs::histogram_bucket_bound(i) + 1),
              i + 1);
  }
  EXPECT_EQ(obs::histogram_bucket_bound(obs::kHistBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Obs, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  const obs::Counter c = reg.counter("test_counter_total");
  const obs::Gauge g = reg.gauge("test_gauge");
  const obs::Histogram h = reg.histogram("test_hist_ns");

  c.inc();
  c.add(41);
  g.set(2.5);
  h.record(0);
  h.record(5);
  h.record(1000);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "test_counter_total");
  EXPECT_EQ(snap.counters[0].value, 42u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 3u);
  EXPECT_EQ(snap.histograms[0].sum, 1005u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].mean(), 335.0);
  EXPECT_EQ(snap.histograms[0].buckets[0], 1u);  // the 0
  EXPECT_EQ(snap.histograms[0].buckets[obs::histogram_bucket(5)], 1u);
  EXPECT_EQ(snap.histograms[0].buckets[obs::histogram_bucket(1000)], 1u);
}

TEST(Obs, RegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  const obs::Counter a = reg.counter("same_name_total");
  const obs::Counter b = reg.counter("same_name_total");
  a.inc();
  b.inc();
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 2u);
}

TEST(Obs, InertHandlesNeverCrash) {
  // Default-constructed handles and over-capacity registrations must be
  // safe no-ops: telemetry can never take the process down.
  const obs::Counter c;
  const obs::Gauge g;
  const obs::Histogram h;
  c.inc();
  c.add(10);
  g.set(1.0);
  h.record(7);
  EXPECT_FALSE(h.active());
  { obs::ScopedTimer t(h); }

  obs::MetricsRegistry reg;
  for (std::size_t i = 0; i < obs::kMaxGauges + 8; ++i) {
    const obs::Gauge over = reg.gauge("gauge_" + std::to_string(i));
    over.set(static_cast<double>(i));  // past capacity: silently inert
  }
  EXPECT_EQ(reg.snapshot().gauges.size(), obs::kMaxGauges);
}

TEST(Obs, DisableStopsCollection) {
  obs::MetricsRegistry reg;
  const obs::Counter c = reg.counter("c_total");
  const obs::Histogram h = reg.histogram("h_ns");
  c.inc();
  reg.set_enabled(false);
  c.add(100);
  h.record(5);
  EXPECT_FALSE(h.active());
  reg.set_enabled(true);
  c.inc();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(Obs, ResetZeroesValuesKeepsNames) {
  obs::MetricsRegistry reg;
  const obs::Counter c = reg.counter("c_total");
  const obs::Gauge g = reg.gauge("g");
  const obs::Histogram h = reg.histogram("h_ns");
  c.add(5);
  g.set(3.0);
  h.record(9);
  reg.reset();
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  EXPECT_EQ(snap.gauges[0].value, 0.0);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  EXPECT_EQ(snap.histograms[0].sum, 0u);
  c.inc();  // handles stay valid after reset
  EXPECT_EQ(reg.snapshot().counters[0].value, 1u);
}

TEST(Obs, ScopedTimerRecordsElapsed) {
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("timer_ns");
  { obs::ScopedTimer t(h); }
  { obs::ScopedTimer t(h); }
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.histograms[0].count, 2u);
}

TEST(Obs, ThreadShardingAggregatesExactly) {
  // The concurrency contract: every thread updates its own shard with
  // relaxed atomics, and snapshot() still sees the exact global totals.
  obs::MetricsRegistry reg;
  const obs::Counter c = reg.counter("mt_total");
  const obs::Histogram h = reg.histogram("mt_ns");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].value, kThreads * kPerThread);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum = expected_sum + (static_cast<std::uint64_t>(t) + 1) *
                                      kPerThread;
  }
  EXPECT_EQ(snap.histograms[0].sum, expected_sum);
}

TEST(Obs, ConcurrentSnapshotWhileWriting) {
  // snapshot() and reset() race against writers without UB (mutex on the
  // shard list, relaxed atomics on values); run under TSan/ASan presets.
  obs::MetricsRegistry reg;
  const obs::Counter c = reg.counter("race_total");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      // At least one increment even if this thread is first scheduled
      // after main flips `stop` (single-core hosts).
      do {
        c.inc();
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)reg.snapshot();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
  const obs::MetricsSnapshot last = reg.snapshot();
  EXPECT_GT(last.counters[0].value, 0u);
}

TEST(Obs, GlobalRegistryHasStandardSet) {
  // instance() pre-registers every metric_names.h constant so snapshots
  // always expose the full core/stream/io/qc family.
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const auto has_counter = [&](std::string_view name) {
    for (const auto& s : snap.counters) {
      if (s.name == name) return true;
    }
    return false;
  };
  const auto has_hist = [&](std::string_view name) {
    for (const auto& s : snap.histograms) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_counter(obs::kCoreBlocksEncoded));
  EXPECT_TRUE(has_counter(obs::kStreamRawBytesIn));
  EXPECT_TRUE(has_counter(obs::kIoRangedReads));
  EXPECT_TRUE(has_counter(obs::kQcEriQuartets));
  EXPECT_TRUE(has_hist(obs::kCorePatternSelectNs));
  EXPECT_TRUE(has_hist(obs::kStreamEncodeBatchNs));
  EXPECT_TRUE(has_hist(obs::kIoShardAppendNs));
  EXPECT_TRUE(has_hist(obs::kQcEriGenerateBatchNs));
}

TEST(Obs, CodecRunMovesCoreAndStreamMetrics) {
  const BlockSpec spec{6, 9};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 12; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-6, b);
    data.insert(data.end(), block.begin(), block.end());
  }
  const auto find_counter = [](const obs::MetricsSnapshot& snap,
                               std::string_view name) -> std::uint64_t {
    for (const auto& s : snap.counters) {
      if (s.name == name) return s.value;
    }
    return 0;
  };
  const obs::MetricsSnapshot before = obs::registry().snapshot();
  const auto stream = compress(data, spec, Params{});
  const auto back = decompress(stream);
  const obs::MetricsSnapshot after = obs::registry().snapshot();
  EXPECT_EQ(find_counter(after, obs::kCoreBlocksEncoded) -
                find_counter(before, obs::kCoreBlocksEncoded),
            12u);
  EXPECT_EQ(find_counter(after, obs::kCoreBlocksDecoded) -
                find_counter(before, obs::kCoreBlocksDecoded),
            12u);
  EXPECT_EQ(find_counter(after, obs::kStreamRawBytesIn) -
                find_counter(before, obs::kStreamRawBytesIn),
            data.size() * sizeof(double));
  EXPECT_GT(find_counter(after, obs::kStreamCompressedBytesOut),
            find_counter(before, obs::kStreamCompressedBytesOut));
}

TEST(Obs, MetricsDoNotChangeCompressedBytes) {
  // Telemetry observes the codec; it must never perturb the stream.
  const BlockSpec spec{4, 8};
  const auto data = testutil::random_doubles(spec.block_size() * 6, -1, 1);
  const auto with_metrics = compress(data, spec, Params{});
  obs::registry().set_enabled(false);
  const auto without_metrics = compress(data, spec, Params{});
  obs::registry().set_enabled(true);
  EXPECT_EQ(with_metrics, without_metrics);
}

TEST(Obs, ExportJsonShape) {
  obs::MetricsRegistry reg;
  reg.counter("c_total").add(7);
  reg.gauge("g").set(1.5);
  reg.histogram("h_ns").record(100);
  const std::string json = obs::export_json(reg.snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":100"), std::string::npos);
}

TEST(Obs, ExportPrometheusShape) {
  obs::MetricsRegistry reg;
  reg.counter("pastri_test_total").add(3);
  reg.histogram("pastri_test_ns").record(2);
  const std::string prom = obs::export_prometheus(reg.snapshot());
  EXPECT_NE(prom.find("# TYPE pastri_test_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("pastri_test_total 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pastri_test_ns histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("pastri_test_ns_count 1"), std::string::npos);
  EXPECT_NE(prom.find("pastri_test_ns_sum 2"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

TEST(Obs, StatsToJsonRoundsTheRun) {
  Stats st;
  st.input_bytes = 1000;
  st.output_bytes = 100;
  st.num_blocks = 3;
  st.blocks_by_type = {1, 0, 2, 0};
  const std::string json = st.to_json();
  EXPECT_NE(json.find("\"input_bytes\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"output_bytes\":100"), std::string::npos);
  EXPECT_NE(json.find("\"ratio\":10"), std::string::npos);
  EXPECT_NE(json.find("\"blocks_by_type\":[1,0,2,0]"), std::string::npos);

  const std::string run = obs::export_run_json(st, obs::MetricsSnapshot{});
  EXPECT_NE(run.find("\"stats\":"), std::string::npos);
  EXPECT_NE(run.find("\"metrics\":"), std::string::npos);
}

}  // namespace
