// Tests for automatic sub-block period detection.
#include <gtest/gtest.h>

#include <cmath>

#include "core/period_detect.h"
#include "core/pastri.h"
#include "test_util.h"

namespace pastri {
namespace {

TEST(PeriodDetect, ExactPatternScoresPerfectly) {
  const BlockSpec spec{12, 30};
  const auto block = testutil::exact_pattern_block(spec, 4);
  EXPECT_NEAR(score_period(block, 30), 1.0, 1e-9);
}

TEST(PeriodDetect, WrongPeriodScoresLower) {
  const BlockSpec spec{12, 30};
  const auto block = testutil::exact_pattern_block(spec, 4);
  // 30 divides 360; competing divisors that are NOT multiples of the true
  // period must score clearly worse.
  const double right = score_period(block, 30);
  for (std::size_t wrong : {4u, 9u, 20u, 45u, 72u}) {
    EXPECT_LT(score_period(block, wrong) + 0.15, right) << wrong;
  }
}

TEST(PeriodDetect, MultiplesOfTruePeriodScoreLow) {
  // A double-length slice contains two *differently scaled* copies of
  // the pattern, so it is not a scalar multiple of another double-length
  // slice: the explained-variance score punishes period multiples and
  // the suggester lands on the base period.
  const BlockSpec spec{12, 30};
  const auto block = testutil::exact_pattern_block(spec, 4);
  EXPECT_LT(score_period(block, 60), 0.9);
  const BlockSpec suggested = suggest_block_spec(block, 180);
  EXPECT_EQ(suggested.sub_block_size, 30u);
  EXPECT_EQ(suggested.num_sub_blocks, 12u);
}

TEST(PeriodDetect, NoisyPatternStillDetected) {
  const BlockSpec spec{16, 25};
  auto block = testutil::noisy_pattern_block(spec, 0.02, 8);
  const BlockSpec suggested = suggest_block_spec(block, 200);
  EXPECT_EQ(suggested.sub_block_size, 25u);
}

TEST(PeriodDetect, RandomDataFallsBackToTrivial) {
  const auto data = testutil::random_doubles(360, -1.0, 1.0, 17);
  const BlockSpec suggested = suggest_block_spec(data, 180);
  EXPECT_EQ(suggested.num_sub_blocks, 1u);
  EXPECT_EQ(suggested.sub_block_size, 360u);
}

TEST(PeriodDetect, RealEriBlockRecoversKetPairSize) {
  // For a (dd|dd) block the paper's geometry is 36 sub-blocks of 36.
  const auto& ds = testutil::small_eri_dataset();
  std::size_t hits = 0, checked = 0;
  for (std::size_t b = 0; b < ds.num_blocks && checked < 12; ++b) {
    const auto block = ds.block(b);
    double mx = 0;
    for (double v : block) mx = std::max(mx, std::abs(v));
    if (mx < 1e-8) continue;
    ++checked;
    const BlockSpec s = suggest_block_spec(block, 200, 0.7);
    if (s.sub_block_size == 36) ++hits;
  }
  ASSERT_GT(checked, 0u);
  // Physics deviations blur some near-field blocks; most must resolve.
  EXPECT_GE(2 * hits, checked);
}

TEST(PeriodDetect, RankedCandidatesSorted) {
  const BlockSpec spec{10, 24};
  const auto block = testutil::exact_pattern_block(spec, 2);
  const auto ranked = rank_periods(block, 2, 120);
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  EXPECT_EQ(ranked.front().period, 24u);  // the true period wins outright
}

TEST(PeriodDetect, DetectedSpecCompressesAsWellAsTrueSpec) {
  // End-to-end: compressing with the auto-detected geometry must land
  // within a few percent of the known-geometry ratio.
  const BlockSpec truth{36, 36};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 24; ++b) {
    auto block = testutil::noisy_pattern_block(truth, 1e-9, b);
    for (double& v : block) v *= 1e-6;
    data.insert(data.end(), block.begin(), block.end());
  }
  const BlockSpec detected = suggest_block_spec(
      std::span<const double>(data).first(truth.block_size()), 200);
  EXPECT_EQ(detected.sub_block_size, truth.sub_block_size);

  Params p;
  Stats st_true, st_detected;
  compress(data, truth, p, &st_true);
  compress(data, BlockSpec{truth.num_sub_blocks, detected.sub_block_size},
           p, &st_detected);
  EXPECT_GT(st_detected.ratio(), 0.9 * st_true.ratio());
}

TEST(PeriodDetect, DegenerateInputs) {
  EXPECT_EQ(score_period({}, 4), 0.0);
  const std::vector<double> zeros(64, 0.0);
  EXPECT_EQ(score_period(zeros, 8), 0.0);
  const BlockSpec s = suggest_block_spec(zeros, 32);
  EXPECT_EQ(s.num_sub_blocks, 1u);
}

}  // namespace
}  // namespace pastri
