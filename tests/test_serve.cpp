// Tests for the service layer: the pastri_store_* C API, the
// pastri_serve daemon (binary protocol + HTTP /metrics), admission
// control, and the sharded ERI block cache under concurrency.
//
// Every network test binds 127.0.0.1:0 (ephemeral port) so parallel
// ctest runs never collide.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "core/pastri.h"
#include "core/pastri_capi.h"
#include "core/stream.h"
#include "io/block_store.h"
#include "qc/compressed_eri_store.h"
#include "qc/sto3g.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace pastri {
namespace {

class Serve : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("pastri_serve_") + info->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Write a small container of deterministic blocks; returns its path
  /// and the exact uncompressed input.
  std::string write_container(std::size_t num_blocks,
                              std::vector<double>* input = nullptr) {
    const std::string path = dir_ + "/blocks.pastri";
    BlockSpec spec;
    spec.num_sub_blocks = 4;
    spec.sub_block_size = 16;
    Params params;
    std::ofstream f(path, std::ios::binary);
    OstreamSink sink(f);
    StreamWriter writer(sink, spec, params);
    std::vector<double> block(spec.block_size());
    for (std::size_t b = 0; b < num_blocks; ++b) {
      for (std::size_t i = 0; i < block.size(); ++i) {
        block[i] = (static_cast<double>(b) + 1.0) * 1e-3 *
                   (static_cast<double>(i) - 30.0);
      }
      writer.put_block(block);
      if (input != nullptr) {
        input->insert(input->end(), block.begin(), block.end());
      }
    }
    writer.finish();
    return path;
  }

  std::string dir_;
};

qc::Molecule water() {
  qc::Molecule m;
  m.name = "H2O";
  m.atoms = {{"O", 8, {0, 0, 0}},
             {"H", 1, {0, 1.4305, 1.1093}},
             {"H", 1, {0, -1.4305, 1.1093}}};
  return m;
}

// ---- pastri_store_* C API ------------------------------------------------

TEST_F(Serve, StoreCApiRoundTrip) {
  std::vector<double> input;
  const std::string path = write_container(10, &input);

  pastri_store* store = nullptr;
  ASSERT_EQ(pastri_store_open(path.c_str(), nullptr, &store), PASTRI_OK);
  std::size_t num_blocks = 0, block_size = 0;
  ASSERT_EQ(pastri_store_num_blocks(store, &num_blocks), PASTRI_OK);
  ASSERT_EQ(pastri_store_block_size(store, &block_size), PASTRI_OK);
  EXPECT_EQ(num_blocks, 10u);
  EXPECT_EQ(block_size, 64u);

  Params params;
  std::vector<double> out(block_size);
  for (std::size_t b : {std::size_t{0}, std::size_t{7}, std::size_t{7}}) {
    ASSERT_EQ(pastri_store_get_block(store, b, out.data(), out.size()),
              PASTRI_OK);
    for (std::size_t i = 0; i < block_size; ++i) {
      EXPECT_NEAR(out[i], input[b * block_size + i], params.error_bound);
    }
  }

  std::vector<double> range(block_size * 4);
  ASSERT_EQ(
      pastri_store_get_range(store, 2, 4, range.data(), range.size()),
      PASTRI_OK);
  for (std::size_t i = 0; i < range.size(); ++i) {
    EXPECT_NEAR(range[i], input[2 * block_size + i], params.error_bound);
  }

  pastri_store_cache_stats stats;
  ASSERT_EQ(pastri_store_get_cache_stats(store, &stats), PASTRI_OK);
  EXPECT_EQ(stats.hits, 1u);    // the repeated block 7
  EXPECT_EQ(stats.misses, 2u);  // blocks 0 and 7 (ranges bypass)
  EXPECT_EQ(stats.unique_blocks, 2u);
  pastri_store_close(store);
}

TEST_F(Serve, StoreCApiStatusDiscipline) {
  pastri_store* store = nullptr;
  EXPECT_EQ(pastri_store_open(nullptr, nullptr, &store),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pastri_store_open((dir_ + "/missing").c_str(), nullptr, &store),
            PASTRI_ERR_CORRUPT_STREAM);

  // A non-PaSTRI file must be refused, not crash.
  const std::string junk = dir_ + "/junk";
  std::ofstream(junk, std::ios::binary) << "definitely not a container";
  EXPECT_EQ(pastri_store_open(junk.c_str(), nullptr, &store),
            PASTRI_ERR_CORRUPT_STREAM);

  // A truncated container must be refused, not crash.
  std::vector<double> input;
  const std::string path = write_container(10, &input);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const std::string cut = dir_ + "/truncated.pastri";
  std::ofstream(cut, std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  EXPECT_NE(pastri_store_open(cut.c_str(), nullptr, &store), PASTRI_OK);

  ASSERT_EQ(pastri_store_open(path.c_str(), nullptr, &store), PASTRI_OK);
  std::vector<double> out(64);
  EXPECT_EQ(pastri_store_get_block(store, 99, out.data(), out.size()),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pastri_store_get_block(store, 0, out.data(), 3),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pastri_store_get_range(store, 8, 4, out.data(), out.size()),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pastri_store_get_block(store, 0, nullptr, 64),
            PASTRI_ERR_INVALID_ARGUMENT);
  std::size_t count = 0;
  EXPECT_EQ(
      pastri_store_shell_block(store, 0, 0, 0, 0, out.data(), 64, &count),
      PASTRI_ERR_INVALID_ARGUMENT);  // not an ERI store
  EXPECT_NE(pastri_last_error_message(), nullptr);
  pastri_store_close(store);
  pastri_store_close(nullptr);  // must be a no-op
}

TEST_F(Serve, StoreCApiEri) {
  pastri_store* store = nullptr;
  pastri_store_cache_config cache;
  pastri_store_cache_config_init(&cache);
  EXPECT_EQ(cache.capacity_blocks, 1024u);
  EXPECT_EQ(cache.num_shards, 8u);
  ASSERT_EQ(pastri_store_open_eri("benzene", nullptr, &cache, &store),
            PASTRI_OK);

  // Cross-check a few quartets against the C++ store.
  const qc::BasisSet basis =
      qc::make_sto3g_basis(qc::make_molecule("benzene"));
  Params params;
  const qc::CompressedEriStore ref(basis, params);
  std::vector<double> out(4096);
  for (const auto& quartet :
       {std::array<std::size_t, 4>{0, 0, 0, 0},
        std::array<std::size_t, 4>{1, 2, 3, 4},
        std::array<std::size_t, 4>{5, 5, 2, 2}}) {
    std::size_t count = 0;
    ASSERT_EQ(pastri_store_shell_block(store, quartet[0], quartet[1],
                                       quartet[2], quartet[3], out.data(),
                                       out.size(), &count),
              PASTRI_OK);
    const auto expect =
        ref.shell_block(quartet[0], quartet[1], quartet[2], quartet[3]);
    ASSERT_EQ(count, expect->size());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], (*expect)[i]);
    }
  }
  std::size_t count = 0;
  EXPECT_EQ(pastri_store_shell_block(store, 9999, 0, 0, 0, out.data(),
                                     out.size(), &count),
            PASTRI_ERR_INVALID_ARGUMENT);

  EXPECT_EQ(pastri_store_open_eri("no-such-molecule", nullptr, nullptr,
                                  &store),
            PASTRI_ERR_INVALID_ARGUMENT);
  pastri_store_close(store);
}

TEST_F(Serve, CacheConfigStructs) {
  const qc::BasisSet basis = qc::make_sto3g_basis(water());
  Params params;
  qc::CompressedEriStore store(basis, params);
  store.set_cache(CacheConfig{16, 4});
  EXPECT_EQ(store.cache_config().capacity_blocks, 16u);
  EXPECT_EQ(store.cache_config().num_shards, 4u);

  (void)store.shell_block(0, 0, 0, 0);
  (void)store.shell_block(0, 0, 0, 0);
  const CacheStats stats = store.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.unique_blocks, 1u);
  EXPECT_GT(stats.bytes, 0u);

  // The deprecated accessors are thin views of the same stats.
  EXPECT_EQ(store.cache_hits(), stats.hits);
  EXPECT_EQ(store.cache_misses(), stats.misses);
  EXPECT_EQ(store.cache_bytes(), stats.bytes);
  EXPECT_EQ(store.cache_unique_blocks(), stats.unique_blocks);

  // Shard counts are clamped to the capacity (a 1-block cache cannot
  // stripe 8 ways without losing exact LRU accounting).
  store.set_cache(CacheConfig{2, 64});
  EXPECT_LE(store.cache_config().num_shards, 2u);
}

// ---- daemon: protocol round trips ---------------------------------------

TEST_F(Serve, ProtocolRoundTrip) {
  std::vector<double> input;
  const std::string path = write_container(12, &input);
  serve::Server server;
  server.start();

  serve::Client client("127.0.0.1", server.port());
  client.ping();
  const serve::StoreInfo info = client.open_store(path);
  EXPECT_EQ(info.num_blocks, 12u);
  EXPECT_EQ(info.block_size, 64u);

  Params params;
  const std::vector<double> blk = client.get_block(info.id, 5);
  ASSERT_EQ(blk.size(), 64u);
  for (std::size_t i = 0; i < blk.size(); ++i) {
    EXPECT_NEAR(blk[i], input[5 * 64 + i], params.error_bound);
  }
  const std::vector<double> rng = client.get_range(info.id, 0, 12);
  ASSERT_EQ(rng.size(), input.size());
  for (std::size_t i = 0; i < rng.size(); ++i) {
    EXPECT_NEAR(rng[i], input[i], params.error_bound);
  }

  // A second client opening the same path shares the store (same id,
  // shared cache counters).
  serve::Client other("127.0.0.1", server.port());
  const serve::StoreInfo again = other.open_store(path);
  EXPECT_EQ(again.id, info.id);
  (void)other.get_block(info.id, 5);  // warm: decoded once by `client`
  const CacheStats stats = other.stats(info.id);
  EXPECT_GE(stats.hits, 1u);

  server.stop();
}

TEST_F(Serve, PutStreamRoundTrip) {
  serve::Server server;
  server.start();
  serve::Client client("127.0.0.1", server.port());

  const std::string path = dir_ + "/put.pastri";
  const std::uint32_t session = client.put_open(path, 4, 16, 1e-6);
  std::vector<double> input;
  std::vector<double> chunk(96);  // deliberately not block-aligned
  for (std::size_t c = 0; c < 8; ++c) {
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = 1e-4 * static_cast<double>(c * chunk.size() + i);
    }
    client.put_chunk(session, chunk);
    input.insert(input.end(), chunk.begin(), chunk.end());
  }
  const serve::PutResult result = client.put_close(session);
  EXPECT_EQ(result.num_blocks, 12u);  // 8 * 96 / 64
  EXPECT_EQ(result.input_bytes, input.size() * sizeof(double));
  EXPECT_GT(result.output_bytes, 0u);
  EXPECT_LT(result.output_bytes, result.input_bytes);

  // Read the container back through the same daemon.
  const serve::StoreInfo info = client.open_store(path);
  EXPECT_EQ(info.num_blocks, 12u);
  const std::vector<double> rng = client.get_range(info.id, 0, 12);
  ASSERT_EQ(rng.size(), input.size());
  for (std::size_t i = 0; i < rng.size(); ++i) {
    EXPECT_NEAR(rng[i], input[i], 1e-6);
  }

  // Unknown session ids are rejected, not fatal.
  EXPECT_THROW(client.put_close(session), serve::RpcError);
  server.stop();
}

TEST_F(Serve, EriOverProtocol) {
  serve::Server server;
  server.start();
  serve::Client client("127.0.0.1", server.port());
  const serve::StoreInfo info = client.open_eri("benzene");
  EXPECT_EQ(info.block_size, 0u);
  const std::vector<double> blk = client.shell_block(info.id, 0, 0, 0, 0);
  EXPECT_FALSE(blk.empty());
  EXPECT_THROW(client.shell_block(info.id, 9999, 0, 0, 0),
               serve::RpcError);
  EXPECT_THROW(client.open_eri("no-such-molecule"), serve::RpcError);
  server.stop();
}

// ---- daemon: robustness and admission control ---------------------------

TEST_F(Serve, MalformedFramesDontCrash) {
  const std::string path = write_container(4);
  serve::Server server;
  server.start();
  serve::Client client("127.0.0.1", server.port());
  const serve::StoreInfo info = client.open_store(path);

  // Unknown opcode.
  EXPECT_EQ(client.raw_frame(0x6F, {}).first,
            PASTRI_ERR_INVALID_ARGUMENT);
  // Truncated payloads for every opcode.
  for (std::uint8_t opcode = 0x01; opcode <= 0x09; ++opcode) {
    const auto [status, body] = client.raw_frame(opcode, {0x01});
    if (opcode != 0x07) {  // PUT_CHUNK tolerates any tail length
      EXPECT_EQ(status, PASTRI_ERR_INVALID_ARGUMENT)
          << "opcode " << int(opcode);
    }
  }
  // Trailing garbage after a valid GET_BLOCK payload.
  std::vector<std::uint8_t> long_payload(40, 0xEE);
  EXPECT_EQ(client.raw_frame(0x02, long_payload).first,
            PASTRI_ERR_INVALID_ARGUMENT);
  // Unknown store / session ids in well-formed frames.
  serve::WireWriter w;
  w.u32(4242);
  w.u64(0);
  EXPECT_EQ(client.raw_frame(0x02, w.data()).first,
            PASTRI_ERR_INVALID_ARGUMENT);
  // Deterministic pseudo-random fuzz payloads.
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  for (int round = 0; round < 64; ++round) {
    std::vector<std::uint8_t> payload(round * 3 % 61);
    for (auto& b : payload) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<std::uint8_t>(rng >> 56);
    }
    const std::uint8_t opcode = static_cast<std::uint8_t>(rng % 16);
    (void)client.raw_frame(opcode, payload);  // must answer, not crash
  }

  // The connection survived all of it.
  client.ping();
  const std::vector<double> blk = client.get_block(info.id, 0);
  EXPECT_EQ(blk.size(), 64u);
  server.stop();
}

TEST_F(Serve, OversizedFrameRejected) {
  serve::Server server;
  server.start();
  // Hand-rolled socket: claim a 1 GiB frame, send nothing else.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::vector<std::uint8_t> wire(serve::kHello,
                                 serve::kHello + sizeof(serve::kHello));
  const std::uint32_t huge = 1u << 30;
  wire.resize(wire.size() + 4);
  std::memcpy(wire.data() + 4, &huge, 4);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  // The server must answer a status frame, then close.
  std::uint8_t head[9];
  std::size_t got = 0;
  while (got < sizeof(head)) {
    const ssize_t r = ::recv(fd, head + got, sizeof(head) - got, 0);
    if (r <= 0) break;
    got += static_cast<std::size_t>(r);
  }
  ASSERT_EQ(got, sizeof(head));
  std::int32_t status;
  std::memcpy(&status, head + 5, 4);
  EXPECT_EQ(status, PASTRI_ERR_INVALID_ARGUMENT);
  char extra;
  EXPECT_EQ(::recv(fd, &extra, 1, 0), 0);  // orderly close
  ::close(fd);
  server.stop();
}

TEST_F(Serve, BusySheddingWhenFull) {
  serve::ServerConfig config;
  config.num_workers = 1;
  config.accept_queue_depth = 0;  // every connection sheds
  serve::Server server(config);
  server.start();

  // Connect without sending a byte: the shed response must arrive
  // unprompted (admission control acts before any request).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::uint8_t head[9];
  std::size_t got = 0;
  while (got < sizeof(head)) {
    const ssize_t r = ::recv(fd, head + got, sizeof(head) - got, 0);
    if (r <= 0) break;
    got += static_cast<std::size_t>(r);
  }
  ASSERT_EQ(got, sizeof(head));
  std::int32_t status;
  std::memcpy(&status, head + 5, 4);
  EXPECT_EQ(status, PASTRI_ERR_BUSY);
  ::close(fd);
  server.stop();
}

TEST_F(Serve, PutSessionCapSheds) {
  serve::ServerConfig config;
  config.max_put_sessions = 1;
  serve::Server server(config);
  server.start();
  serve::Client client("127.0.0.1", server.port());
  const std::uint32_t sid = client.put_open(dir_ + "/a.pastri", 4, 16);
  try {
    (void)client.put_open(dir_ + "/b.pastri", 4, 16);
    FAIL() << "second PUT session must shed";
  } catch (const serve::RpcError& e) {
    EXPECT_EQ(e.status, PASTRI_ERR_BUSY);
  }
  // Closing the first session frees the slot.
  std::vector<double> chunk(64, 0.25);
  client.put_chunk(sid, chunk);
  (void)client.put_close(sid);
  const std::uint32_t sid2 = client.put_open(dir_ + "/b.pastri", 4, 16);
  client.put_chunk(sid2, chunk);
  (void)client.put_close(sid2);
  server.stop();
}

TEST_F(Serve, PutBackpressureBoundedQueue) {
  serve::ServerConfig config;
  config.put_queue_depth = 1;  // tightest legal queue
  serve::Server server(config);
  server.start();
  serve::Client client("127.0.0.1", server.port());
  const std::string path = dir_ + "/bp.pastri";
  const std::uint32_t sid = client.put_open(path, 4, 16);
  std::vector<double> input;
  std::vector<double> chunk(64);
  for (std::size_t c = 0; c < 32; ++c) {
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = std::sin(static_cast<double>(c * 64 + i) * 0.01);
    }
    client.put_chunk(sid, chunk);  // must block, never fail or drop
    input.insert(input.end(), chunk.begin(), chunk.end());
  }
  const serve::PutResult result = client.put_close(sid);
  EXPECT_EQ(result.num_blocks, 32u);
  const serve::StoreInfo info = client.open_store(path);
  const std::vector<double> rng = client.get_range(info.id, 0, 32);
  Params params;
  ASSERT_EQ(rng.size(), input.size());
  for (std::size_t i = 0; i < rng.size(); ++i) {
    EXPECT_NEAR(rng[i], input[i], params.error_bound);
  }
  server.stop();
}

// ---- daemon: HTTP metrics ------------------------------------------------

TEST_F(Serve, HttpMetricsEndpoint) {
  const std::string path = write_container(4);
  serve::Server server;
  server.start();
  serve::Client client("127.0.0.1", server.port());
  const serve::StoreInfo info = client.open_store(path);
  (void)client.get_block(info.id, 0);

  const std::string response =
      serve::Client::http_get("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("pastri_serve_requests_total"),
            std::string::npos);
  EXPECT_NE(response.find("pastri_serve_bytes_out_total"),
            std::string::npos);
  EXPECT_NE(response.find("pastri_core_blocks_decoded_total"),
            std::string::npos);

  const std::string missing =
      serve::Client::http_get("127.0.0.1", server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.stop();
}

// ---- sharded ERI cache under concurrency ---------------------------------

TEST_F(Serve, ShellBlockConcurrentStress) {
  const qc::BasisSet basis = qc::make_sto3g_basis(water());
  Params params;
  params.error_bound = 1e-10;
  const qc::CompressedEriStore ref(basis, params);
  qc::CompressedEriStore store(basis, params);
  store.set_cache(CacheConfig{8, 4});  // small: force eviction races

  const std::size_t ns = store.num_shells();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 300;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rng = 0xDEADBEEF + t;
      for (std::size_t it = 0; it < kIters; ++it) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t a = (rng >> 12) % ns;
        const std::size_t b = (rng >> 24) % ns;
        const std::size_t c = (rng >> 36) % ns;
        const std::size_t d = (rng >> 48) % ns;
        const auto got = store.shell_block(a, b, c, d);
        const auto want = ref.shell_block(a, b, c, d);
        if (*got != *want) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Exact accounting: every lookup is exactly one hit or one miss,
  // even under contention and eviction.
  const CacheStats stats = store.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.unique_blocks, 8u);
}

TEST_F(Serve, BlockStoreConcurrentReaders) {
  std::vector<double> input;
  const std::string path = write_container(16, &input);
  io::BlockStore store(path, CacheConfig{8, 4});
  Params params;
  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rng = 17 * (t + 1);
      for (std::size_t it = 0; it < 200; ++it) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t b = (rng >> 33) % store.num_blocks();
        const auto blk = store.block(b);
        for (std::size_t i = 0; i < blk->size(); ++i) {
          if (std::abs((*blk)[i] - input[b * 64 + i]) >
              params.error_bound) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const CacheStats stats = store.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * 200u);
}

}  // namespace
}  // namespace pastri
