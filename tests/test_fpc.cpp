// Tests for the FPC lossless baseline (paper ref. [9]).
#include <gtest/gtest.h>

#include <cmath>

#include "compressors/lossless/fpc.h"
#include "test_util.h"

namespace pastri::baselines {
namespace {

TEST(Fpc, RoundTripEmpty) {
  const auto back = fpc_decompress(fpc_compress({}));
  EXPECT_TRUE(back.empty());
}

TEST(Fpc, RoundTripExactBits) {
  // FPC is lossless: bit-exact round trip including signed zeros, denormals
  // and non-finite values.
  std::vector<double> data{0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           3.141592653589793,
                           1e-310,  // denormal
                           -1e308,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  const auto back = fpc_decompress(fpc_compress(data));
  ASSERT_EQ(back.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(data[i]))
        << i;
  }
}

TEST(Fpc, RoundTripRandom) {
  const auto data = pastri::testutil::random_doubles(50000, -1.0, 1.0, 5);
  const auto back = fpc_decompress(fpc_compress(data));
  EXPECT_EQ(back, data);
}

TEST(Fpc, RoundTripEriData) {
  const auto& ds = pastri::testutil::small_eri_dataset();
  const auto back = fpc_decompress(fpc_compress(ds.values));
  EXPECT_EQ(back, ds.values);
}

TEST(Fpc, RepetitiveDataCompressesWell) {
  std::vector<double> data(100000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i % 17);  // strongly predictable
  }
  const auto stream = fpc_compress(data);
  EXPECT_LT(stream.size(), data.size() * 8 / 4);
  EXPECT_EQ(fpc_decompress(stream), data);
}

TEST(Fpc, EriRatioInLosslessBand) {
  // The paper's related-work claim: lossless compressors reach only
  // ~1.1-2x on (nonzero) scientific floating-point data.  Zero blocks
  // inflate this somewhat; require the ratio stays well below lossy.
  const auto& ds = pastri::testutil::small_eri_dataset();
  const auto stream = fpc_compress(ds.values);
  const double ratio = static_cast<double>(ds.size_bytes()) /
                       static_cast<double>(stream.size());
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 6.0);
}

TEST(Fpc, TableSizeTradesRatio) {
  const auto data = pastri::testutil::random_doubles(20000, 0.0, 1.0, 9);
  FpcParams small{6}, large{20};
  const auto s_small = fpc_compress(data, small);
  const auto s_large = fpc_compress(data, large);
  EXPECT_EQ(fpc_decompress(s_small), data);
  EXPECT_EQ(fpc_decompress(s_large), data);
}

TEST(Fpc, RejectsBadParams) {
  FpcParams p;
  p.table_log2 = 2;
  EXPECT_THROW(fpc_compress({}, p), std::invalid_argument);
  p.table_log2 = 30;
  EXPECT_THROW(fpc_compress({}, p), std::invalid_argument);
}

TEST(Fpc, CorruptMagicThrows) {
  auto stream = fpc_compress(std::vector<double>(8, 1.0));
  stream[0] ^= 0xFF;
  EXPECT_THROW(fpc_decompress(stream), std::runtime_error);
}

}  // namespace
}  // namespace pastri::baselines
