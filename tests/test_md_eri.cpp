// Tests for the McMurchie-Davidson ERI engine: analytic limits,
// permutational symmetry, invariances, and the Schwarz bound.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "qc/eri_engine.h"
#include "qc/md_eri.h"

namespace pastri::qc {
namespace {

Shell make_shell(int l, Vec3 center, double exponent) {
  Shell s;
  s.l = l;
  s.center = center;
  s.primitives = {{exponent, 1.0}};
  s.normalize();
  return s;
}

TEST(HermiteE, SShellIsGaussianPrefactor) {
  // E_0^{00} = exp(-mu X^2).
  const double a = 0.9, b = 1.7, Ax = 0.3, Bx = -1.1;
  const HermiteE E(0, 0, a, b, Ax, Bx);
  const double mu = a * b / (a + b);
  const double X = Ax - Bx;
  EXPECT_NEAR(E(0, 0, 0), std::exp(-mu * X * X), 1e-15);
}

TEST(HermiteE, OutOfRangeIsZero) {
  const HermiteE E(2, 2, 1.0, 1.0, 0.0, 1.0);
  EXPECT_EQ(E(1, 1, 3), 0.0);  // t > i+j
  EXPECT_EQ(E(1, 1, -1), 0.0);
}

TEST(HermiteE, OverlapSumRule) {
  // The 1-D overlap of x_A^i x_B^j Gaussians equals E_0^{ij} sqrt(pi/p):
  // verify against numerical quadrature for a few (i, j).
  const double a = 0.8, b = 1.3, Ax = 0.25, Bx = -0.4;
  const double p = a + b;
  const HermiteE E(2, 2, a, b, Ax, Bx);
  for (int i = 0; i <= 2; ++i) {
    for (int j = 0; j <= 2; ++j) {
      double quad = 0.0;
      const int N = 40000;
      const double lo = -12.0, hi = 12.0;
      for (int k = 0; k < N; ++k) {
        const double x = lo + (hi - lo) * (k + 0.5) / N;
        quad += std::pow(x - Ax, i) * std::pow(x - Bx, j) *
                std::exp(-a * (x - Ax) * (x - Ax)) *
                std::exp(-b * (x - Bx) * (x - Bx));
      }
      quad *= (hi - lo) / N;
      const double analytic = E(i, j, 0) * std::sqrt(std::numbers::pi / p);
      EXPECT_NEAR(quad, analytic, 1e-8 * std::max(1.0, std::abs(analytic)))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(HermiteR, BaseCaseIsBoys) {
  HermiteR R(0);
  R.compute(0.7, {0.0, 0.0, 0.0}, 0);
  EXPECT_NEAR(R(0, 0, 0), 1.0, 1e-15);  // F_0(0) = 1
}

TEST(MdEri, SameCenterSsssAnalytic) {
  // Four normalized s Gaussians with exponent 1 at the origin:
  // (ss|ss) = 2/sqrt(pi).
  const Shell s = make_shell(0, {0, 0, 0}, 1.0);
  const auto v = compute_block(s, s, s, s);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NEAR(v[0], 2.0 / std::sqrt(std::numbers::pi), 1e-12);
}

TEST(MdEri, GeneralSameCenterSsss) {
  // (ss|ss) with exponents a,b,c,d at one center:
  //   2 pi^{5/2} / (pq sqrt(p+q)) * N_a N_b N_c N_d
  const double a = 0.5, b = 1.2, c = 2.1, d = 0.8;
  const Shell A = make_shell(0, {1, 2, 3}, a);
  const Shell B = make_shell(0, {1, 2, 3}, b);
  const Shell C = make_shell(0, {1, 2, 3}, c);
  const Shell D = make_shell(0, {1, 2, 3}, d);
  const double p = a + b, q = c + d;
  const double expect = 2.0 * std::pow(std::numbers::pi, 2.5) /
                        (p * q * std::sqrt(p + q)) *
                        primitive_norm(a, 0, 0, 0) *
                        primitive_norm(b, 0, 0, 0) *
                        primitive_norm(c, 0, 0, 0) *
                        primitive_norm(d, 0, 0, 0);
  EXPECT_NEAR(compute_block(A, B, C, D)[0], expect, 1e-12 * expect);
}

TEST(MdEri, CoulombLongRangeLimit) {
  // Distant unit charge distributions repel as 1/R.
  const Shell s1 = make_shell(0, {0, 0, 0}, 1.3);
  const Shell s2 = make_shell(0, {25.0, 0, 0}, 0.9);
  const auto v = compute_block(s1, s1, s2, s2);
  EXPECT_NEAR(v[0], 1.0 / 25.0, 1e-10);
}

TEST(MdEri, BraKetSwapSymmetry) {
  const Shell p1 = make_shell(1, {0.3, -0.2, 0.5}, 0.8);
  const Shell d1 = make_shell(2, {1.2, 0.4, -0.3}, 1.1);
  const Shell p2 = make_shell(1, {-0.7, 0.9, 0.1}, 0.9);
  const Shell s1 = make_shell(0, {0.5, 0.5, -0.5}, 1.4);
  const auto braket = compute_block(p1, d1, p2, s1);  // [3][6][3][1]
  const auto ketbra = compute_block(p2, s1, p1, d1);  // [3][1][3][6]
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 6; ++b) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_NEAR(braket[(a * 6 + b) * 3 + c],
                    ketbra[c * 3 * 6 + a * 6 + b], 1e-13);
      }
    }
  }
}

TEST(MdEri, WithinPairSwapSymmetry) {
  const Shell p1 = make_shell(1, {0.1, 0.0, 0.2}, 0.7);
  const Shell d1 = make_shell(2, {0.9, -0.4, 0.0}, 1.2);
  const Shell s1 = make_shell(0, {-0.5, 0.6, 0.3}, 1.0);
  const auto ab = compute_block(p1, d1, s1, s1);  // [3][6][1][1]
  const auto ba = compute_block(d1, p1, s1, s1);  // [6][3][1][1]
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 6; ++b) {
      EXPECT_NEAR(ab[a * 6 + b], ba[b * 3 + a], 1e-13);
    }
  }
}

TEST(MdEri, TranslationInvariance) {
  const Vec3 shift{2.5, -1.0, 0.75};
  Shell A = make_shell(1, {0.0, 0.1, 0.2}, 0.9);
  Shell B = make_shell(2, {1.0, -0.3, 0.0}, 1.3);
  Shell C = make_shell(1, {-0.8, 0.5, 0.6}, 0.8);
  Shell D = make_shell(0, {0.4, 0.4, -0.9}, 1.1);
  const auto before = compute_block(A, B, C, D);
  for (Shell* s : {&A, &B, &C, &D}) {
    for (int k = 0; k < 3; ++k) s->center[k] += shift[k];
  }
  const auto after = compute_block(A, B, C, D);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i],
                1e-12 * std::max(1.0, std::abs(before[i])));
  }
}

TEST(MdEri, AxisPermutationInvariance) {
  // Swapping x <-> y axes of all centers permutes p components (x,y,z) ->
  // (y,x,z) but leaves values intact.
  const auto swap_xy = [](Vec3 v) { return Vec3{v[1], v[0], v[2]}; };
  const Vec3 cA{0.2, -0.5, 0.3}, cB{1.0, 0.8, -0.2};
  const Shell A = make_shell(1, cA, 0.9);
  const Shell B = make_shell(0, cB, 1.2);
  const Shell A2 = make_shell(1, swap_xy(cA), 0.9);
  const Shell B2 = make_shell(0, swap_xy(cB), 1.2);
  const auto orig = compute_block(A, B, A, B);   // [3][1][3][1]
  const auto swpd = compute_block(A2, B2, A2, B2);
  const int perm[3] = {1, 0, 2};
  for (int i = 0; i < 3; ++i) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_NEAR(orig[i * 3 + k], swpd[perm[i] * 3 + perm[k]], 1e-13);
    }
  }
}

TEST(MdEri, DiagonalPositive) {
  // (ab|ab) diagonal elements are squared norms in the Coulomb metric.
  const Shell A = make_shell(2, {0.0, 0.0, 0.0}, 1.0);
  const Shell B = make_shell(1, {1.1, 0.2, -0.4}, 0.8);
  const auto block = compute_block(A, B, A, B);
  const int n = 6 * 3;
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(block[i * n + i], 0.0) << "i=" << i;
  }
}

TEST(MdEri, SchwarzBoundHolds) {
  std::mt19937_64 gen(42);
  std::uniform_real_distribution<double> pos(-2.0, 2.0);
  std::uniform_real_distribution<double> expo(0.5, 2.0);
  std::uniform_int_distribution<int> mom(0, 2);
  for (int trial = 0; trial < 10; ++trial) {
    const Shell A = make_shell(mom(gen), {pos(gen), pos(gen), pos(gen)},
                               expo(gen));
    const Shell B = make_shell(mom(gen), {pos(gen), pos(gen), pos(gen)},
                               expo(gen));
    const Shell C = make_shell(mom(gen), {pos(gen), pos(gen), pos(gen)},
                               expo(gen));
    const Shell D = make_shell(mom(gen), {pos(gen), pos(gen), pos(gen)},
                               expo(gen));
    const double bound = schwarz_bound(A, B) * schwarz_bound(C, D);
    const auto block = compute_block(A, B, C, D);
    for (double v : block) {
      EXPECT_LE(std::abs(v), bound * (1.0 + 1e-10))
          << "trial " << trial;
    }
  }
}

TEST(MdEri, ContractionIsLinear) {
  // A 2-primitive shell equals the coefficient-weighted sum of its
  // 1-primitive parts (before normalization).
  Shell contracted;
  contracted.l = 0;
  contracted.center = {0.2, 0.1, -0.3};
  contracted.primitives = {{0.7, 0.6}, {1.9, 0.8}};
  // Note: no normalize() -- we test raw linearity.
  Shell part1 = contracted, part2 = contracted;
  part1.primitives = {{0.7, 0.6}};
  part2.primitives = {{1.9, 0.8}};
  const Shell probe = make_shell(0, {1.0, 1.0, 1.0}, 1.0);
  const auto full = compute_block(contracted, probe, probe, probe);
  const auto p1 = compute_block(part1, probe, probe, probe);
  const auto p2 = compute_block(part2, probe, probe, probe);
  EXPECT_NEAR(full[0], p1[0] + p2[0], 1e-13 * std::abs(full[0]));
}

TEST(MdEri, GShellBlockFiniteAndSymmetric) {
  // The engine supports up to g shells (L_total = 16 for (gg|gg)).
  const Shell g1 = make_shell(4, {0.0, 0.0, 0.0}, 1.0);
  const Shell g2 = make_shell(4, {1.2, -0.4, 0.6}, 0.9);
  const auto block = compute_block(g1, g2, g1, g2);
  ASSERT_EQ(block.size(), 15u * 15 * 15 * 15);
  for (double v : block) {
    ASSERT_TRUE(std::isfinite(v));
  }
  // Bra <-> ket swap symmetry spot checks.
  const int n = 15 * 15;
  for (int i = 0; i < n; i += 37) {
    for (int k = 0; k < n; k += 41) {
      EXPECT_NEAR(block[i * n + k], block[k * n + i],
                  1e-12 * std::max(1.0, std::abs(block[i * n + k])));
    }
  }
}

TEST(MdEri, FShellBlockFinite) {
  // Smoke: the highest supported configuration must produce finite
  // values of plausible magnitude.
  const Shell f1 = make_shell(3, {0.0, 0.0, 0.0}, 0.8);
  const Shell f2 = make_shell(3, {1.5, 0.3, -0.4}, 0.9);
  const auto block = compute_block(f1, f2, f1, f2);
  ASSERT_EQ(block.size(), 10u * 10 * 10 * 10);
  for (double v : block) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 1e3);
  }
}

}  // namespace
}  // namespace pastri::qc
