// Tests for the small dense linear algebra used by the SCF substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "qc/linalg.h"

namespace pastri::qc {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m(i, j) = m(j, i) = dist(gen);
    }
  }
  return m;
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a = random_symmetric(5, 1);
  const Matrix i = Matrix::identity(5);
  EXPECT_LT((a * i).max_abs_diff(a), 1e-15);
  EXPECT_LT((i * a).max_abs_diff(a), 1e-15);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = random_symmetric(6, 2);
  EXPECT_LT(a.transpose().transpose().max_abs_diff(a), 1e-15);
}

TEST(Matrix, AdditionSubtraction) {
  const Matrix a = random_symmetric(4, 3);
  const Matrix b = random_symmetric(4, 4);
  EXPECT_LT(((a + b) - b).max_abs_diff(a), 1e-14);
}

TEST(Jacobi, DiagonalMatrix) {
  Matrix d(3);
  d(0, 0) = 3.0;
  d(1, 1) = -1.0;
  d(2, 2) = 2.0;
  const EigenResult r = jacobi_eigensolver(d);
  EXPECT_NEAR(r.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], 3.0, 1e-12);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 1 and 3.
  Matrix a(2);
  a(0, 0) = a(1, 1) = 2.0;
  a(0, 1) = a(1, 0) = 1.0;
  const EigenResult r = jacobi_eigensolver(a);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-12);
}

TEST(Jacobi, ReconstructsMatrix) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const Matrix a = random_symmetric(8, seed);
    const EigenResult r = jacobi_eigensolver(a);
    // A = V diag(w) V^T
    Matrix recon(8);
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < 8; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k < 8; ++k) {
          sum += r.eigenvectors(i, k) * r.eigenvalues[k] *
                 r.eigenvectors(j, k);
        }
        recon(i, j) = sum;
      }
    }
    EXPECT_LT(recon.max_abs_diff(a), 1e-10) << "seed " << seed;
  }
}

TEST(Jacobi, EigenvectorsOrthonormal) {
  const Matrix a = random_symmetric(7, 9);
  const EigenResult r = jacobi_eigensolver(a);
  const Matrix vtv = r.eigenvectors.transpose() * r.eigenvectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(7)), 1e-10);
}

TEST(Jacobi, EigenvaluesAscending) {
  const EigenResult r = jacobi_eigensolver(random_symmetric(10, 11));
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_LE(r.eigenvalues[i - 1], r.eigenvalues[i]);
  }
}

TEST(Orthogonalizer, XtSXIsIdentity) {
  // Build an SPD "overlap-like" matrix: S = I + small symmetric.
  Matrix s = Matrix::identity(6);
  const Matrix noise = random_symmetric(6, 13);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      s(i, j) += 0.1 * noise(i, j);
    }
  }
  const Matrix x = symmetric_orthogonalizer(s);
  const Matrix xtsx = x.transpose() * s * x;
  EXPECT_LT(xtsx.max_abs_diff(Matrix::identity(6)), 1e-9);
}

TEST(Orthogonalizer, SingularThrows) {
  Matrix s(3);  // all zero: singular
  EXPECT_THROW(symmetric_orthogonalizer(s), std::runtime_error);
}

}  // namespace
}  // namespace pastri::qc
