// Cross-module integration tests: the full paper pipeline on real ERI
// data -- generate, compress with all three codecs, verify error bounds,
// the Fig. 3 pattern property, and the paper's qualitative orderings.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "compressors/compressor_iface.h"
#include "core/pastri.h"
#include "qc/eri_engine.h"
#include "test_util.h"
#include "zchecker/metrics.h"

namespace pastri {
namespace {

using testutil::max_abs_diff;

struct CodecCase {
  const char* name;
  bool is_pastri;
};

class AllCodecsOnEri : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<baselines::LossyCompressor> make(
      const qc::EriDataset& ds) const {
    const std::string which = GetParam();
    const BlockSpec spec{ds.shape.num_sub_blocks(),
                         ds.shape.sub_block_size()};
    if (which == "PaSTRI") return baselines::make_pastri_compressor(spec);
    if (which == "SZ") return baselines::make_sz_compressor();
    return baselines::make_zfp_compressor();
  }
};

TEST_P(AllCodecsOnEri, ErrorBoundAndCompression) {
  const auto& ds = testutil::small_eri_dataset();
  const auto codec = make(ds);
  for (double eb : {1e-9, 1e-10, 1e-11}) {
    const auto stream = codec->compress(ds.values, eb);
    const auto back = codec->decompress(stream);
    ASSERT_EQ(back.size(), ds.values.size());
    EXPECT_LE(max_abs_diff(ds.values, back), eb * (1 + 1e-12))
        << codec->name() << " eb=" << eb;
    EXPECT_LT(stream.size(), ds.size_bytes()) << codec->name();
  }
}

TEST_P(AllCodecsOnEri, CoarserBoundNeverBigger) {
  const auto& ds = testutil::small_eri_dataset();
  const auto codec = make(ds);
  const auto fine = codec->compress(ds.values, 1e-11);
  const auto coarse = codec->compress(ds.values, 1e-9);
  EXPECT_LE(coarse.size(), fine.size()) << codec->name();
}

INSTANTIATE_TEST_SUITE_P(Codecs, AllCodecsOnEri,
                         ::testing::Values("PaSTRI", "SZ", "ZFP"));

TEST(Integration, PastriBeatsBaselinesOnEriData) {
  // The headline of Fig. 9(a): PaSTRI's ratio exceeds both SZ's and
  // ZFP's on every ERI dataset.
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  const double eb = 1e-10;
  const auto pastri_size =
      baselines::make_pastri_compressor(spec)->compress(ds.values, eb)
          .size();
  const auto sz_size =
      baselines::make_sz_compressor()->compress(ds.values, eb).size();
  const auto zfp_size =
      baselines::make_zfp_compressor()->compress(ds.values, eb).size();
  EXPECT_LT(pastri_size, sz_size);
  EXPECT_LT(pastri_size, zfp_size);
}

TEST(Integration, Fig3PatternProperty) {
  // Sub-blocks of one ERI block correlate strongly once rescaled -- the
  // observation of Fig. 3(b,c).
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  std::size_t checked = 0;
  for (std::size_t b = 0; b < ds.num_blocks && checked < 10; ++b) {
    const auto block = ds.block(b);
    double mx = 0;
    for (double v : block) mx = std::max(mx, std::abs(v));
    if (mx < 1e-7) continue;
    ++checked;
    const auto sel = select_pattern(block, spec, ScalingMetric::ER);
    const auto pattern = block.subspan(
        sel.pattern_sub_block * spec.sub_block_size, spec.sub_block_size);
    for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
      if (std::abs(sel.scales[j]) < 0.01) continue;  // near-null sub-block
      const double corr = zchecker::pearson_correlation(
          block.subspan(j * spec.sub_block_size, spec.sub_block_size),
          pattern);
      EXPECT_GT(std::abs(corr), 0.9) << "block " << b << " sub " << j;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Integration, BlockTypeCensusHasZeroHeavyTail) {
  // On a spatially extended molecule most sampled quartets are far-field:
  // types 0/1 dominate (Fig. 6's "70-80%" census).
  qc::DatasetOptions o;
  o.config = {2, 2, 2, 2};
  o.max_blocks = 600;
  o.seed = 31;
  const auto ds = qc::generate_eri_dataset(qc::make_trialanine(), o);
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  Stats st;
  compress(ds.values, spec, p, &st);
  const double frac01 =
      static_cast<double>(st.blocks_by_type[0] + st.blocks_by_type[1]) /
      static_cast<double>(st.num_blocks);
  EXPECT_GT(frac01, 0.5);
}

TEST(Integration, StorageBreakdownMatchesPaper) {
  // Section V-B: ECQ dominates the output (~70-80%), PQ+SQ ~20-30%.
  // The proportions drift with dataset mix; assert the ordering and
  // sane bounds rather than exact percentages.
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  Stats st;
  compress(ds.values, spec, p, &st);
  const double total = static_cast<double>(st.pattern_bits +
                                           st.scale_bits + st.ecq_bits);
  EXPECT_GT(st.ecq_bits / total, 0.4);
  EXPECT_GT((st.pattern_bits + st.scale_bits) / total, 0.05);
}

TEST(Integration, RateDistortionMonotone) {
  // Fig. 9(b): finer bounds give higher PSNR and higher bitrate.
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  const auto codec = baselines::make_pastri_compressor(spec);
  double prev_psnr = -1, prev_rate = -1;
  for (double eb : {1e-8, 1e-9, 1e-10, 1e-11}) {
    const auto stream = codec->compress(ds.values, eb);
    const auto back = codec->decompress(stream);
    const auto stats = zchecker::compare(ds.values, back);
    const double rate =
        zchecker::bitrate_bits_per_value(ds.size_bytes(), stream.size());
    EXPECT_GT(stats.psnr_db, prev_psnr) << "eb=" << eb;
    EXPECT_GT(rate, prev_rate) << "eb=" << eb;
    prev_psnr = stats.psnr_db;
    prev_rate = rate;
  }
}

TEST(Integration, HybridConfigCompresses) {
  const auto& ds = testutil::hybrid_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  const auto codec = baselines::make_pastri_compressor(spec);
  const auto stream = codec->compress(ds.values, 1e-10);
  const auto back = codec->decompress(stream);
  EXPECT_LE(max_abs_diff(ds.values, back), 1e-10 * (1 + 1e-12));
}

TEST(Integration, DecompressionFasterThanRecomputation) {
  // Fig. 11's premise: decompressing a dataset is faster than
  // regenerating it with the integral engine.
  qc::DatasetOptions o;
  o.config = {2, 2, 2, 2};
  o.max_blocks = 150;
  const auto t_gen0 = std::chrono::steady_clock::now();
  const auto ds = qc::generate_eri_dataset(qc::make_benzene(), o);
  const auto t_gen1 = std::chrono::steady_clock::now();

  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  const auto stream = compress(ds.values, spec, p);
  const auto t_dec0 = std::chrono::steady_clock::now();
  const auto back = decompress(stream);
  const auto t_dec1 = std::chrono::steady_clock::now();

  const double gen_secs =
      std::chrono::duration<double>(t_gen1 - t_gen0).count();
  const double dec_secs =
      std::chrono::duration<double>(t_dec1 - t_dec0).count();
  EXPECT_LT(dec_secs, gen_secs);
  (void)back;
}

}  // namespace
}  // namespace pastri
