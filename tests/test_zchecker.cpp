// Tests for the Z-Checker-style metrics library.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pastri.h"
#include "test_util.h"
#include "zchecker/dataset_stats.h"
#include "zchecker/metrics.h"

namespace pastri::zchecker {
namespace {

TEST(Compare, IdenticalDataIsPerfect) {
  const std::vector<double> a{1.0, -2.0, 3.5, 0.0};
  const ErrorStats s = compare(a, a);
  EXPECT_EQ(s.n, 4u);
  EXPECT_EQ(s.max_abs_error, 0.0);
  EXPECT_EQ(s.mse, 0.0);
  EXPECT_TRUE(std::isinf(s.psnr_db));
}

TEST(Compare, KnownErrors) {
  const std::vector<double> a{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> b{0.1, 1.0, 1.9, 3.0};
  const ErrorStats s = compare(a, b);
  EXPECT_NEAR(s.max_abs_error, 0.1, 1e-15);
  EXPECT_NEAR(s.mse, (0.01 + 0.01) / 4.0, 1e-15);
  EXPECT_NEAR(s.mean_abs_error, 0.05, 1e-15);
  EXPECT_NEAR(s.value_range, 3.0, 1e-15);
  // PSNR = 20 log10(range / rmse)
  EXPECT_NEAR(s.psnr_db, 20.0 * std::log10(3.0 / std::sqrt(0.005)), 1e-9);
}

TEST(Compare, EmptyInput) {
  const ErrorStats s = compare({}, {});
  EXPECT_EQ(s.n, 0u);
}

TEST(Ratio, Definitions) {
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 100), 10.0);
  EXPECT_DOUBLE_EQ(bitrate_bits_per_value(1000, 100), 6.4);
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 0), 0.0);
}

TEST(Ratio, PaperHeadline) {
  // 16.8x ratio corresponds to ~3.8 bits per double.
  EXPECT_NEAR(bitrate_bits_per_value(168, 10), 3.81, 0.01);
}

TEST(Histogram, CountsLandInBins) {
  const std::vector<double> data{0.05, 0.15, 0.15, 0.95, -1.0, 2.0};
  const auto h = histogram(data, 0.0, 1.0, 10);
  ASSERT_EQ(h.size(), 10u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[9], 1u);
  std::size_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, 4u);  // out-of-range values dropped
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
  for (auto& v : b) v = -v;
  EXPECT_NEAR(pearson_correlation(a, b), -1.0, 1e-12);
}

TEST(Pearson, UncorrelatedNearZero) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{1, -1, 1, -1};
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.5);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{5, 5, 5};
  EXPECT_EQ(pearson_correlation(a, b), 0.0);
}

TEST(DatasetStats, RealEriDataset) {
  const auto& ds = pastri::testutil::small_eri_dataset();
  const DatasetStats st = analyze_dataset(ds);
  EXPECT_EQ(st.num_blocks, ds.num_blocks);
  EXPECT_LE(st.zero_blocks, st.num_blocks);
  EXPECT_GT(st.max_extremum, 0.0);
  EXPECT_LE(st.min_nonzero_extremum, st.max_extremum);
  // ER pattern explains the bulk of every block (Fig. 3 property).
  EXPECT_LT(st.mean_relative_deviation, 0.2);
  EXPECT_LT(st.worst_relative_deviation, 0.7);
  std::size_t decades = 0;
  for (auto c : st.extremum_decades) decades += c;
  EXPECT_LE(decades, st.num_blocks);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> x(400);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * M_PI * i / 8.0);
  }
  EXPECT_GT(autocorrelation(x, 8), 0.9);   // full period
  EXPECT_LT(autocorrelation(x, 4), -0.9);  // half period: anti-phase
}

TEST(Autocorrelation, DegenerateInputs) {
  EXPECT_EQ(autocorrelation(std::vector<double>{1.0}, 1), 0.0);
  const std::vector<double> constant(10, 3.0);
  EXPECT_EQ(autocorrelation(constant, 2), 0.0);
  const std::vector<double> x{1, 2, 3};
  EXPECT_EQ(autocorrelation(x, 5), 0.0);  // lag beyond length
}

TEST(Autocorrelation, CompressionErrorNearWhite) {
  // PaSTRI's quantization error should be close to white noise: no
  // large structured autocorrelation at small lags.
  const auto& ds = pastri::testutil::small_eri_dataset();
  pastri::Params p;
  const pastri::BlockSpec spec{ds.shape.num_sub_blocks(),
                               ds.shape.sub_block_size()};
  const auto back = pastri::decompress(pastri::compress(ds.values, spec, p));
  const auto ac = error_autocorrelation(ds.values, back, 5);
  ASSERT_EQ(ac.size(), 5u);
  for (double a : ac) EXPECT_LT(std::abs(a), 0.5);
}

TEST(DatasetStats, AllZeroDataset) {
  qc::EriDataset zero;
  zero.label = "zeros";
  zero.shape.n = {2, 2, 2, 2};
  zero.num_blocks = 3;
  zero.values.assign(3 * 16, 0.0);
  const DatasetStats st = analyze_dataset(zero);
  EXPECT_EQ(st.zero_blocks, 3u);
  EXPECT_EQ(st.min_nonzero_extremum, 0.0);
  EXPECT_EQ(st.max_extremum, 0.0);
}

}  // namespace
}  // namespace pastri::zchecker
