// test_util.h - Shared fixtures and data factories for the test suite.
#pragma once

#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "core/block_spec.h"
#include "qc/eri_engine.h"

namespace pastri::testutil {

/// Deterministic RNG for reproducible tests.
inline std::mt19937_64 rng(std::uint64_t seed = 0xC0FFEE) {
  return std::mt19937_64(seed);
}

/// Uniform random doubles in [lo, hi].
inline std::vector<double> random_doubles(std::size_t n, double lo,
                                          double hi,
                                          std::uint64_t seed = 0xC0FFEE) {
  auto gen = rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(gen);
  return v;
}

/// A block that is an *exact* pattern: sub-block j = scale_j * base.
/// PaSTRI should compress this to pattern+scales with (almost) no ECQ.
inline std::vector<double> exact_pattern_block(const pastri::BlockSpec& spec,
                                               std::uint64_t seed = 7) {
  auto gen = rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> base(spec.sub_block_size);
  for (auto& x : base) x = dist(gen);
  std::vector<double> block(spec.block_size());
  for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
    // Guarantee at least one scale of magnitude 1 (the pattern itself).
    const double s = (j == 0) ? 1.0 : dist(gen);
    for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
      block[j * spec.sub_block_size + i] = s * base[i];
    }
  }
  return block;
}

/// Pattern block with bounded additive noise (models real ERI deviation).
inline std::vector<double> noisy_pattern_block(const pastri::BlockSpec& spec,
                                               double noise,
                                               std::uint64_t seed = 7) {
  auto block = exact_pattern_block(spec, seed);
  auto gen = rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::uniform_real_distribution<double> dist(-noise, noise);
  for (auto& x : block) x += dist(gen);
  return block;
}

/// Small cached ERI dataset for integration-style tests (computed once).
inline const pastri::qc::EriDataset& small_eri_dataset() {
  static const pastri::qc::EriDataset ds = [] {
    pastri::qc::DatasetOptions o;
    o.config = {2, 2, 2, 2};
    o.max_blocks = 200;
    o.seed = 99;
    return pastri::qc::generate_eri_dataset(pastri::qc::make_benzene(), o);
  }();
  return ds;
}

/// Small (pd|dp)-style hybrid dataset exercising non-uniform shapes.
inline const pastri::qc::EriDataset& hybrid_eri_dataset() {
  static const pastri::qc::EriDataset ds = [] {
    pastri::qc::DatasetOptions o;
    o.config = {1, 2, 2, 1};
    o.max_blocks = 150;
    o.seed = 17;
    return pastri::qc::generate_eri_dataset(pastri::qc::make_glutamine(), o);
  }();
  return ds;
}

inline double max_abs_diff(std::span<const double> a,
                           std::span<const double> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace pastri::testutil
