// Tests for shell-quartet enumeration, screening, sampling, and dataset
// serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "qc/eri_engine.h"
#include "test_util.h"

namespace pastri::qc {
namespace {

TEST(ParseConfig, AcceptedSpellings) {
  const std::array<int, 4> dddd{2, 2, 2, 2};
  EXPECT_EQ(parse_config("(dd|dd)"), dddd);
  EXPECT_EQ(parse_config("dddd"), dddd);
  EXPECT_EQ(parse_config("(fd|ff)"), (std::array<int, 4>{3, 2, 3, 3}));
  EXPECT_EQ(parse_config("sspp"), (std::array<int, 4>{0, 0, 1, 1}));
}

TEST(ParseConfig, Rejections) {
  EXPECT_THROW(parse_config("(dd|d)"), std::invalid_argument);
  EXPECT_THROW(parse_config("ddddd"), std::invalid_argument);
  EXPECT_THROW(parse_config("(dq|dd)"), std::invalid_argument);
}

TEST(BlockShape, SizesAndName) {
  BlockShape sh;
  sh.n = {10, 6, 10, 10};  // (fd|ff)
  EXPECT_EQ(sh.block_size(), 6000u);
  EXPECT_EQ(sh.num_sub_blocks(), 60u);
  EXPECT_EQ(sh.sub_block_size(), 100u);
  EXPECT_EQ(sh.config_name(), "(fd|ff)");
}

TEST(Dataset, DeterministicAcrossRuns) {
  DatasetOptions o;
  o.config = {1, 1, 1, 1};
  o.max_blocks = 50;
  o.seed = 5;
  const Molecule mol = make_benzene();
  const EriDataset a = generate_eri_dataset(mol, o);
  const EriDataset b = generate_eri_dataset(mol, o);
  ASSERT_EQ(a.values.size(), b.values.size());
  EXPECT_EQ(a.values, b.values);
}

TEST(Dataset, SeedChangesSample) {
  DatasetOptions o;
  o.config = {1, 1, 1, 1};
  o.max_blocks = 50;
  const Molecule mol = make_benzene();
  o.seed = 1;
  const EriDataset a = generate_eri_dataset(mol, o);
  o.seed = 2;
  const EriDataset b = generate_eri_dataset(mol, o);
  EXPECT_NE(a.values, b.values);
}

TEST(Dataset, MaxBlocksCap) {
  DatasetOptions o;
  o.config = {0, 0, 0, 0};
  o.max_blocks = 17;
  const EriDataset ds = generate_eri_dataset(make_glutamine(), o);
  EXPECT_EQ(ds.num_blocks, 17u);
  EXPECT_EQ(ds.values.size(), 17u * ds.shape.block_size());
}

TEST(Dataset, TargetBytesDerivesBlockCount) {
  DatasetOptions o;
  o.config = {2, 2, 2, 2};  // 1296 doubles/block = 10368 bytes
  o.target_bytes = 110000;
  const EriDataset ds = generate_eri_dataset(make_benzene(), o);
  EXPECT_EQ(ds.num_blocks, 10u);
}

TEST(Dataset, LabelAndShape) {
  DatasetOptions o;
  o.config = {2, 2, 2, 2};
  o.max_blocks = 3;
  const EriDataset ds = generate_eri_dataset(make_benzene(), o);
  EXPECT_EQ(ds.label, "benzene (dd|dd)");
  EXPECT_EQ(ds.shape.n, (std::array<std::uint16_t, 4>{6, 6, 6, 6}));
}

TEST(Dataset, ScreenedBlocksAreZero) {
  // With a harsh threshold everything screens out and all blocks are 0.
  DatasetOptions o;
  o.config = {1, 1, 1, 1};
  o.max_blocks = 30;
  o.screen_threshold = 1e30;
  const EriDataset ds = generate_eri_dataset(make_benzene(), o);
  EXPECT_EQ(ds.num_blocks, 30u);
  for (double v : ds.values) EXPECT_EQ(v, 0.0);
}

TEST(Dataset, DropScreenedShrinksDataset) {
  DatasetOptions o;
  o.config = {1, 1, 1, 1};
  o.max_blocks = 30;
  o.screen_threshold = 1e30;
  o.keep_screened = false;
  const EriDataset ds = generate_eri_dataset(make_benzene(), o);
  EXPECT_EQ(ds.num_blocks, 0u);
}

TEST(Dataset, ValuesHaveRealisticStructure) {
  const EriDataset& ds = testutil::small_eri_dataset();
  // Nonzero, finite, with a wide dynamic range.
  double max_abs = 0.0, min_nonzero = 1e300;
  for (double v : ds.values) {
    ASSERT_TRUE(std::isfinite(v));
    const double a = std::abs(v);
    max_abs = std::max(max_abs, a);
    if (a > 0) min_nonzero = std::min(min_nonzero, a);
  }
  EXPECT_GT(max_abs, 1e-6);
  EXPECT_LT(min_nonzero, 1e-12);  // spans many orders of magnitude
}

TEST(Dataset, HybridShape) {
  const EriDataset& ds = testutil::hybrid_eri_dataset();
  EXPECT_EQ(ds.shape.n, (std::array<std::uint16_t, 4>{3, 6, 6, 3}));
  EXPECT_EQ(ds.shape.config_name(), "(pd|dp)");
}

TEST(Dataset, SaveLoadRoundTrip) {
  const EriDataset& ds = testutil::small_eri_dataset();
  const std::string path =
      (std::filesystem::temp_directory_path() / "pastri_ds_test.bin")
          .string();
  save_dataset(ds, path);
  const EriDataset back = load_dataset(path);
  EXPECT_EQ(back.label, ds.label);
  EXPECT_EQ(back.shape, ds.shape);
  EXPECT_EQ(back.num_blocks, ds.num_blocks);
  EXPECT_EQ(back.values, ds.values);
  std::remove(path.c_str());
}

TEST(Dataset, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pastri_ds_garbage.bin")
          .string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a dataset";
  }
  EXPECT_THROW(load_dataset(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_dataset("/nonexistent/path/ds.bin"),
               std::runtime_error);
}

TEST(Dataset, GenerationRateIsPositive) {
  DatasetOptions o;
  o.config = {1, 1, 1, 1};
  EXPECT_GT(measure_generation_rate(make_benzene(), o, 20), 0.0);
}

TEST(Dataset, StreamedBlocksMatchDenseGeneration) {
  // generate_eri_blocks must emit exactly the dense dataset's blocks, in
  // dataset order, with identical metadata -- it is the write side of
  // the compute -> compress pipeline, so any deviation would change the
  // compressed bytes.
  DatasetOptions o;
  o.config = {2, 1, 1, 2};
  o.max_blocks = 120;
  o.seed = 5;
  const Molecule mol = make_benzene();
  const EriDataset dense = generate_eri_dataset(mol, o);

  for (const std::size_t batch : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}}) {
    std::vector<double> streamed;
    std::size_t next = 0;
    const EriStreamMeta meta = generate_eri_blocks(
        mol, o,
        [&](const EriStreamMeta& m, std::size_t block,
            std::span<const double> values) {
          EXPECT_EQ(block, next) << "blocks must arrive in order";
          EXPECT_EQ(m.shape, dense.shape);
          EXPECT_EQ(values.size(), dense.shape.block_size());
          ++next;
          streamed.insert(streamed.end(), values.begin(), values.end());
        },
        batch);
    EXPECT_EQ(meta.label, dense.label) << "batch " << batch;
    EXPECT_EQ(meta.shape, dense.shape);
    EXPECT_EQ(meta.num_blocks, dense.num_blocks);
    EXPECT_EQ(next, dense.num_blocks);
    EXPECT_EQ(streamed, dense.values) << "batch " << batch;
  }
}

}  // namespace
}  // namespace pastri::qc
