// Tests for the five ECQ encoding trees of Fig. 7.
#include <gtest/gtest.h>

#include <random>

#include "core/ecq_tree.h"
#include "core/quantize.h"

namespace pastri {
namespace {

const EcqTree kAllTrees[] = {EcqTree::Tree1, EcqTree::Tree2, EcqTree::Tree3,
                             EcqTree::Tree4, EcqTree::Tree5};

class EcqTreeTest : public ::testing::TestWithParam<EcqTree> {};

TEST_P(EcqTreeTest, RoundTripSmallValues) {
  const EcqTree t = GetParam();
  for (unsigned ecb : {2u, 3u, 4u, 6u, 8u, 15u, 22u}) {
    bitio::BitWriter w;
    std::vector<std::int64_t> vals;
    const std::int64_t lim = (std::int64_t{1} << (ecb - 1)) - 1;
    for (std::int64_t v = -std::min<std::int64_t>(lim, 40);
         v <= std::min<std::int64_t>(lim, 40); ++v) {
      if (t == EcqTree::Tree5 && ecb <= 2 && std::abs(v) > 1) continue;
      vals.push_back(v);
      ecq_encode(w, t, v, ecb);
    }
    const auto bytes = w.take();
    bitio::BitReader r(bytes);
    for (std::int64_t v : vals) {
      EXPECT_EQ(ecq_decode(r, t, ecb), v)
          << ecq_tree_name(t) << " ecb=" << ecb;
    }
  }
}

TEST_P(EcqTreeTest, RoundTripRandomSequences) {
  const EcqTree t = GetParam();
  std::mt19937_64 gen(77);
  for (unsigned ecb : {3u, 7u, 12u}) {
    const std::int64_t lim = (std::int64_t{1} << (ecb - 1)) - 1;
    std::uniform_int_distribution<std::int64_t> dist(-lim, lim);
    std::vector<std::int64_t> vals(2000);
    // Skewed distribution: mostly zeros, like real ECQ streams.
    std::bernoulli_distribution zero(0.8);
    for (auto& v : vals) v = zero(gen) ? 0 : dist(gen);
    bitio::BitWriter w;
    for (auto v : vals) ecq_encode(w, t, v, ecb);
    const auto bytes = w.take();
    bitio::BitReader r(bytes);
    for (auto v : vals) {
      ASSERT_EQ(ecq_decode(r, t, ecb), v) << ecq_tree_name(t);
    }
  }
}

TEST_P(EcqTreeTest, CodeLengthMatchesActualEncoding) {
  const EcqTree t = GetParam();
  for (unsigned ecb : {2u, 5u, 9u}) {
    const std::int64_t lim = (std::int64_t{1} << (ecb - 1)) - 1;
    for (std::int64_t v = -std::min<std::int64_t>(lim, 33);
         v <= std::min<std::int64_t>(lim, 33); ++v) {
      if (t == EcqTree::Tree5 && ecb <= 2 && std::abs(v) > 1) continue;
      bitio::BitWriter w;
      ecq_encode(w, t, v, ecb);
      EXPECT_EQ(w.bit_count(), ecq_code_length(t, v, ecb))
          << ecq_tree_name(t) << " v=" << v << " ecb=" << ecb;
    }
  }
}

TEST_P(EcqTreeTest, ZeroIsOneBit) {
  // Every tree encodes the dominant symbol 0 in a single bit.
  EXPECT_EQ(ecq_code_length(GetParam(), 0, 8), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllTrees, EcqTreeTest,
                         ::testing::ValuesIn(kAllTrees),
                         [](const auto& info) {
                           return ecq_tree_name(info.param);
                         });

TEST(EcqTreeShapes, Tree1Lengths) {
  EXPECT_EQ(ecq_code_length(EcqTree::Tree1, 0, 8), 1u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree1, 1, 8), 9u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree1, -100, 8), 9u);
}

TEST(EcqTreeShapes, Tree2GreedyOnes) {
  // Fig. 7: Tree 2 puts +-1 high: 0 -> 1 bit, 1 -> 2 bits, -1 -> 3 bits,
  // others -> 3 + EC_b.
  EXPECT_EQ(ecq_code_length(EcqTree::Tree2, 0, 8), 1u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree2, 1, 8), 2u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree2, -1, 8), 3u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree2, 5, 8), 11u);
}

TEST(EcqTreeShapes, Tree3OthersHigher) {
  // Tree 3 pushes "others" up: 2 + EC_b, and +-1 down to 3 bits.
  EXPECT_EQ(ecq_code_length(EcqTree::Tree3, 5, 8), 10u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree3, 1, 8), 3u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree3, -1, 8), 3u);
}

TEST(EcqTreeShapes, Tree4BinDepths) {
  // Tree 4 spends 2*bin - 1 bits ("-1 is encoded by 10 followed by 0 for
  // 1 and 1 for -1", "+-[2,3] by 110 followed by 2 bits" -- Fig. 7):
  // +-1 -> 3, +-[2,3] -> 5, +-[4,7] -> 7.
  EXPECT_EQ(ecq_code_length(EcqTree::Tree4, 1, 8), 3u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree4, -1, 8), 3u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree4, 3, 8), 5u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree4, 7, 8), 7u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree4, 8, 8), 9u);
}

TEST(EcqTreeShapes, Tree5AdaptsToType1Blocks) {
  // EC_b,max = 2 (type 1): the optimal {0, 1, -1} tree.
  EXPECT_EQ(ecq_code_length(EcqTree::Tree5, 0, 2), 1u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree5, 1, 2), 2u);
  EXPECT_EQ(ecq_code_length(EcqTree::Tree5, -1, 2), 2u);
  // Larger EC_b,max: identical to Tree 3.
  for (std::int64_t v : {0l, 1l, -1l, 9l, -30l}) {
    EXPECT_EQ(ecq_code_length(EcqTree::Tree5, v, 9),
              ecq_code_length(EcqTree::Tree3, v, 9));
  }
}

TEST(EcqTreeShapes, Tree5BeatsOthersOnType1Streams) {
  // On a type-1 stream (only 0 and +-1), Tree 5 must be the shortest.
  std::mt19937_64 gen(5);
  std::vector<std::int64_t> vals(5000);
  std::bernoulli_distribution zero(0.85), sign(0.5);
  for (auto& v : vals) v = zero(gen) ? 0 : (sign(gen) ? 1 : -1);
  const std::size_t t5 = ecq_encoded_bits(EcqTree::Tree5, vals, 2);
  for (EcqTree t : {EcqTree::Tree1, EcqTree::Tree2, EcqTree::Tree3,
                    EcqTree::Tree4}) {
    EXPECT_LE(t5, ecq_encoded_bits(t, vals, 2)) << ecq_tree_name(t);
  }
}

TEST(EcqTreeShapes, EncodedBitsSumsLengths) {
  const std::vector<std::int64_t> vals{0, 0, 1, -1, 7, 0, -3};
  std::size_t expect = 0;
  for (auto v : vals) expect += ecq_code_length(EcqTree::Tree3, v, 6);
  EXPECT_EQ(ecq_encoded_bits(EcqTree::Tree3, vals, 6), expect);
}

}  // namespace
}  // namespace pastri
