// Tests for unrestricted Hartree-Fock (open-shell support, the paper's
// "unrestricted Hartree-Fock" beneficiary).
#include <gtest/gtest.h>

#include <cmath>

#include "core/pastri.h"
#include "qc/scf.h"
#include "qc/sto3g.h"

namespace pastri::qc {
namespace {

Molecule h_atom() {
  Molecule m;
  m.name = "H";
  m.atoms = {{"H", 1, {0, 0, 0}}};
  return m;
}

Molecule h2_molecule(double r = 1.4) {
  Molecule m;
  m.name = "H2";
  m.atoms = {{"H", 1, {0, 0, 0}}, {"H", 1, {r, 0, 0}}};
  return m;
}

Molecule he_molecule() {
  Molecule m;
  m.name = "He";
  m.atoms = {{"He", 2, {0, 0, 0}}};
  return m;
}

TEST(Uhf, HydrogenAtomReference) {
  // One electron: UHF is exact within the basis.  E(H, STO-3G) =
  // -0.466582 Hartree (the STO-3G expansion of the 1s orbital).
  const Molecule mol = h_atom();
  const BasisSet basis = make_sto3g_basis(mol);
  const UhfResult res =
      run_uhf(mol, basis, compute_eri_tensor(basis), 1, 0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.total_energy, -0.466582, 1e-5);
  // Doublet: <S^2> = 0.75 exactly for a single unpaired electron.
  EXPECT_NEAR(res.s_squared, 0.75, 1e-10);
}

TEST(Uhf, ClosedShellMatchesRhf) {
  for (const Molecule& mol : {h2_molecule(), he_molecule()}) {
    const BasisSet basis = make_sto3g_basis(mol);
    const EriTensor eri = compute_eri_tensor(basis);
    const ScfResult rhf = run_rhf(mol, basis, eri);
    const UhfResult uhf = run_uhf(
        mol, basis, eri, static_cast<std::size_t>(electron_count(mol) / 2),
        static_cast<std::size_t>(electron_count(mol) / 2));
    ASSERT_TRUE(uhf.converged) << mol.name;
    EXPECT_NEAR(uhf.total_energy, rhf.total_energy, 1e-8) << mol.name;
    EXPECT_NEAR(uhf.s_squared, 0.0, 1e-8) << mol.name;
  }
}

TEST(Uhf, TripletH2AboveSinglet) {
  // At equilibrium the (sigma_g)^2 singlet lies well below the
  // sigma_g sigma_u triplet.
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor eri = compute_eri_tensor(basis);
  const UhfResult singlet = run_uhf(mol, basis, eri, 1, 1);
  const UhfResult triplet = run_uhf(mol, basis, eri, 2, 0);
  ASSERT_TRUE(singlet.converged);
  ASSERT_TRUE(triplet.converged);
  EXPECT_GT(triplet.total_energy, singlet.total_energy + 0.1);
  // Pure triplet with no beta electrons: <S^2> = 2 exactly.
  EXPECT_NEAR(triplet.s_squared, 2.0, 1e-10);
}

TEST(Uhf, SpinLabelSymmetry) {
  // Swapping alpha <-> beta occupations cannot change the energy.
  const Molecule mol = h_atom();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor eri = compute_eri_tensor(basis);
  const UhfResult up = run_uhf(mol, basis, eri, 1, 0);
  const UhfResult dn = run_uhf(mol, basis, eri, 0, 1);
  EXPECT_NEAR(up.total_energy, dn.total_energy, 1e-10);
}

TEST(Uhf, RejectsBadOccupations) {
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor eri = compute_eri_tensor(basis);
  EXPECT_THROW(run_uhf(mol, basis, eri, 2, 1), std::invalid_argument);
  EXPECT_THROW(run_uhf(mol, basis, eri, 3, 0), std::invalid_argument);
}

TEST(Uhf, CompressedEriPreservesTripletGap) {
  // The singlet-triplet gap survives lossy ERI storage at EB = 1e-10.
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor eri = compute_eri_tensor(basis);
  pastri::Params p;
  const auto stream = pastri::compress(eri, pastri::BlockSpec{4, 4}, p);
  const EriTensor restored = pastri::decompress(stream);
  const double gap_exact = run_uhf(mol, basis, eri, 2, 0).total_energy -
                           run_uhf(mol, basis, eri, 1, 1).total_energy;
  const double gap_lossy =
      run_uhf(mol, basis, restored, 2, 0).total_energy -
      run_uhf(mol, basis, restored, 1, 1).total_energy;
  EXPECT_NEAR(gap_exact, gap_lossy, 1e-7);
}

}  // namespace
}  // namespace pastri::qc
