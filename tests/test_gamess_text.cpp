// Tests for the text-format dataset adapter.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "qc/gamess_text.h"
#include "test_util.h"

namespace pastri::qc {
namespace {

TEST(GamessText, RoundTripBitExact) {
  const EriDataset& ds = testutil::small_eri_dataset();
  std::stringstream ss;
  write_gamess_text(ds, ss);
  const EriDataset back = read_gamess_text(ss);
  EXPECT_EQ(back.label, ds.label);
  EXPECT_EQ(back.shape, ds.shape);
  EXPECT_EQ(back.num_blocks, ds.num_blocks);
  ASSERT_EQ(back.values.size(), ds.values.size());
  for (std::size_t i = 0; i < ds.values.size(); ++i) {
    // max_digits10 printing must reproduce the exact double.
    ASSERT_EQ(back.values[i], ds.values[i]) << i;
  }
}

TEST(GamessText, FileRoundTrip) {
  const EriDataset& ds = testutil::hybrid_eri_dataset();
  const std::string path =
      (std::filesystem::temp_directory_path() / "pastri_gtext.txt")
          .string();
  save_gamess_text(ds, path);
  const EriDataset back = load_gamess_text(path);
  EXPECT_EQ(back.values, ds.values);
  EXPECT_EQ(back.shape, ds.shape);
  std::remove(path.c_str());
}

TEST(GamessText, EmptyDataset) {
  EriDataset empty;
  empty.label = "empty (ss|ss)";
  empty.shape.n = {1, 1, 1, 1};
  std::stringstream ss;
  write_gamess_text(empty, ss);
  const EriDataset back = read_gamess_text(ss);
  EXPECT_EQ(back.num_blocks, 0u);
  EXPECT_EQ(back.label, "empty (ss|ss)");
}

TEST(GamessText, RejectsMalformedInputs) {
  {
    std::stringstream ss("not a dataset at all");
    EXPECT_THROW(read_gamess_text(ss), std::runtime_error);
  }
  {
    std::stringstream ss("$ERIDATA x\n$SHAPE 0 1 1 1\n$END\n");
    EXPECT_THROW(read_gamess_text(ss), std::runtime_error);
  }
  {
    // Truncated block values.
    std::stringstream ss(
        "$ERIDATA x\n$SHAPE 1 1 1 2\n$BLOCK 0\n0.5\n$END\n");
    EXPECT_THROW(read_gamess_text(ss), std::runtime_error);
  }
  {
    // Out-of-order blocks.
    std::stringstream ss(
        "$ERIDATA x\n$SHAPE 1 1 1 1\n$BLOCK 1\n0.5\n$END\n");
    EXPECT_THROW(read_gamess_text(ss), std::runtime_error);
  }
  {
    // Missing $END.
    std::stringstream ss(
        "$ERIDATA x\n$SHAPE 1 1 1 1\n$BLOCK 0\n0.5\n");
    EXPECT_THROW(read_gamess_text(ss), std::runtime_error);
  }
  EXPECT_THROW(load_gamess_text("/nonexistent/file.txt"),
               std::runtime_error);
}

TEST(GamessText, SpecialValuesSurvive) {
  EriDataset ds;
  ds.label = "special (ss|ss)";
  ds.shape.n = {1, 1, 2, 2};
  ds.num_blocks = 1;
  ds.values = {0.0, -0.0, 1e-300, -9.87654321098765432e10};
  std::stringstream ss;
  write_gamess_text(ds, ss);
  const EriDataset back = read_gamess_text(ss);
  ASSERT_EQ(back.values.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.values[i], ds.values[i]);
  }
}

}  // namespace
}  // namespace pastri::qc
