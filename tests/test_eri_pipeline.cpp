// Tests for the fused compute->compress->io pipeline: the BoundedQueue
// stage primitive, the AsyncSink io stage, and the eri_pipeline driver.
//
// The load-bearing property is byte identity: every pipeline knob
// (thread overlap, chunk size, queue depth, async io) may change wall
// time but never the container bytes, so the pipelined dump is
// interchangeable with -- and resumable against -- the sequential
// dense-dataset path.
#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/stream.h"
#include "io/compressed_file.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "qc/direct_scf.h"
#include "qc/eri_pipeline.h"
#include "qc/mp2.h"
#include "qc/sto3g.h"
#include "test_util.h"

namespace pastri {
namespace {

// ---------------------------------------------------------------- core

TEST(BoundedQueue, FifoAndCloseDrain) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  q.close();
  EXPECT_TRUE(q.closed());
  // Consumers drain what is queued, in order, then see end-of-stream.
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));
  // Producers are refused after close.
  EXPECT_FALSE(q.push(99));
}

TEST(BoundedQueue, CapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(BoundedQueue, PerCallerWaitAttribution) {
  // The wait_ns out-params accumulate only the time THIS caller spent
  // blocked, on top of the queue-side totals -- that is what gives the
  // pipeline per-producer stall numbers when N producers share a queue.
  BoundedQueue<int> q(1);
  std::uint64_t push_wait = 0, pop_wait = 0;

  // Uncontended calls add nothing.
  EXPECT_TRUE(q.push(1, &push_wait));
  EXPECT_EQ(push_wait, 0u);
  int v = 0;
  EXPECT_TRUE(q.pop(v, &pop_wait));
  EXPECT_EQ(pop_wait, 0u);

  // A producer blocked on a full queue accrues wait in both places.
  EXPECT_TRUE(q.push(1));
  std::thread unblock([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int x;
    q.pop(x);
  });
  EXPECT_TRUE(q.push(2, &push_wait));
  unblock.join();
  EXPECT_GT(push_wait, 0u);
  EXPECT_GE(q.producer_wait_ns(), push_wait);

  // A consumer blocked on an empty queue likewise.
  int y;
  ASSERT_TRUE(q.pop(y));  // drain item 2
  std::thread feed([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(3);
  });
  EXPECT_TRUE(q.pop(y, &pop_wait));
  feed.join();
  EXPECT_EQ(y, 3);
  EXPECT_GT(pop_wait, 0u);
  EXPECT_GE(q.consumer_wait_ns(), pop_wait);
}

TEST(BoundedQueue, TransfersInOrderAcrossThreads) {
  constexpr int kItems = 2000;
  BoundedQueue<int> q(3);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expected = 0, v = -1;
  while (q.pop(v)) EXPECT_EQ(v, expected++);
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(BoundedQueue, CloseUnblocksFullQueueProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::atomic<bool> second_accepted{true};
  std::thread producer([&] { second_accepted = q.push(1); });
  // The producer is (about to be) blocked on the full queue; close must
  // wake it and make it drop the item.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_FALSE(second_accepted);
  EXPECT_GE(q.producer_wait_ns(), 0u);
}

TEST(BoundedQueue, ConsumerStallIsAccounted) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] {
    int v;
    while (q.pop(v)) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  q.push(1);
  q.close();
  consumer.join();
  // The consumer sat on an empty queue for ~30 ms; the counter must have
  // seen a decent fraction of that.
  EXPECT_GT(q.consumer_wait_ns(), 1'000'000u);
}

// A sink that always fails, for error-propagation tests.
struct ThrowingSink final : ByteSink {
  void write(std::span<const std::uint8_t>) override {
    throw std::runtime_error("disk on fire");
  }
  bool can_patch() const override { return false; }
};

TEST(AsyncSink, BytesMatchDirectWritesAndPatches) {
  // Apply the same op sequence directly and through AsyncSink (with a
  // tiny coalescing buffer so many queue ops actually happen); the inner
  // bytes must be identical.
  const auto payload = testutil::random_doubles(4096, -1.0, 1.0);
  const auto* raw = reinterpret_cast<const std::uint8_t*>(payload.data());
  const std::size_t total = payload.size() * sizeof(double);

  VectorSink direct;
  VectorSink inner;
  {
    AsyncSink::Options o;
    o.queue_depth = 2;
    o.chunk_bytes = 64;
    AsyncSink async(inner, o);
    std::size_t off = 0, step = 1;
    while (off < total) {
      const std::size_t n = std::min(step, total - off);
      direct.write({raw + off, n});
      async.write({raw + off, n});
      off += n;
      step = step * 2 + 1;
    }
    const std::uint8_t patch_bytes[] = {0xDE, 0xAD, 0xBE, 0xEF};
    direct.patch(10, patch_bytes);
    async.patch(10, patch_bytes);
    direct.write({raw, 16});
    async.write({raw, 16});
    async.flush();
    EXPECT_TRUE(async.can_patch());
  }
  EXPECT_EQ(inner.bytes(), direct.bytes());
}

TEST(AsyncSink, InnerErrorReachesTheWriter) {
  ThrowingSink broken;
  AsyncSink async(broken);
  const std::uint8_t b[] = {1, 2, 3};
  async.write(b);  // coalesced; applied asynchronously after flush
  EXPECT_THROW(async.flush(), std::runtime_error);
  // Destruction after a failed drain must not terminate.
}

// ------------------------------------------------------------ io layout

TEST(ShardLayout, RemainderSpreadsOverLeadingShards) {
  const io::ShardLayout layout = io::make_shard_layout(10, 4);
  ASSERT_EQ(layout.num_shards, 4u);
  ASSERT_EQ(layout.blocks_per_shard.size(), 4u);
  EXPECT_EQ(layout.blocks_per_shard[0], 3u);
  EXPECT_EQ(layout.blocks_per_shard[1], 3u);
  EXPECT_EQ(layout.blocks_per_shard[2], 2u);
  EXPECT_EQ(layout.blocks_per_shard[3], 2u);
  EXPECT_EQ(io::shard_first_block(layout, 0), 0u);
  EXPECT_EQ(io::shard_first_block(layout, 1), 3u);
  EXPECT_EQ(io::shard_first_block(layout, 2), 6u);
  EXPECT_EQ(io::shard_first_block(layout, 3), 8u);
}

// --------------------------------------------------------- the pipeline

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

class EriPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("pastri_pipe_") + info->name()))
               .string();
    std::filesystem::create_directories(dir_);
    mol_ = qc::make_molecule("benzene");
    opt_.config = qc::parse_config("(dd|dd)");
    opt_.max_blocks = 24;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::vector<std::uint8_t> stream_bytes(const Params& p,
                                         const qc::EriPipelineOptions& popt) {
    VectorSink sink;
    qc::compress_eri_stream(mol_, opt_, p, sink, popt);
    return sink.take();
  }

  std::string dir_;
  qc::Molecule mol_;
  qc::DatasetOptions opt_;
};

TEST_F(EriPipelineTest, BytesInvariantAcrossEveryKnob) {
  for (const DictMode dict : {DictMode::Off, DictMode::On}) {
    Params p;
    p.dict = dict;

    qc::EriPipelineOptions seq;
    seq.pipelined = false;
    seq.async_io = false;
    const auto golden = stream_bytes(p, seq);
    ASSERT_FALSE(golden.empty());

    const int max_threads = omp_get_max_threads();
    for (const int threads : {1, max_threads}) {
      omp_set_num_threads(threads);
      for (const std::size_t batch : {std::size_t{1}, std::size_t{5},
                                      std::size_t{0}}) {
        for (const std::size_t depth : {std::size_t{1}, std::size_t{3}}) {
          qc::EriPipelineOptions popt;
          popt.batch_blocks = batch;
          popt.queue_depth = depth;
          EXPECT_EQ(stream_bytes(p, popt), golden)
              << "dict=" << static_cast<int>(dict) << " threads=" << threads
              << " batch=" << batch << " depth=" << depth;
        }
      }
    }
    omp_set_num_threads(max_threads);
  }
}

TEST_F(EriPipelineTest, SequentialBaselineIsAlsoSliceInvariant) {
  // Even with no pipeline thread and no async io, the chunk size must
  // not leak into the bytes.
  Params p;
  qc::EriPipelineOptions a, b;
  a.pipelined = b.pipelined = false;
  a.async_io = b.async_io = false;
  a.batch_blocks = 1;
  b.batch_blocks = 7;
  EXPECT_EQ(stream_bytes(p, a), stream_bytes(p, b));
}

TEST_F(EriPipelineTest, DumpMatchesDenseDatasetPathByteForByte) {
  // The tentpole invariant: dump_eri_sharded writes exactly the files
  // write_compressed_dataset(generate_eri_dataset(...)) would, without
  // ever holding the dense tensor.
  Params p;
  constexpr int kShards = 3;
  const qc::EriDataset ds = qc::generate_eri_dataset(mol_, opt_);
  io::write_compressed_dataset(ds, p, kShards, dir_, "dense");

  qc::EriDumpOptions dopt;
  dopt.num_shards = kShards;
  const qc::EriDumpResult res =
      qc::dump_eri_sharded(mol_, opt_, p, dir_, "piped", dopt);
  EXPECT_EQ(res.pipeline.meta.num_blocks, ds.num_blocks);
  EXPECT_EQ(res.shards_total, static_cast<std::size_t>(kShards));
  EXPECT_EQ(res.shards_reused, 0u);

  for (int s = 0; s < kShards; ++s) {
    const std::string suffix = "." + std::to_string(s);
    EXPECT_EQ(slurp(dir_ + "/piped" + suffix),
              slurp(dir_ + "/dense" + suffix))
        << "shard " << s;
  }
  EXPECT_EQ(slurp(dir_ + "/piped.manifest"), slurp(dir_ + "/dense.manifest"));
}

TEST_F(EriPipelineTest, DumpRoundTripsWithinBound) {
  Params p;
  p.error_bound = 1e-9;
  qc::EriDumpOptions dopt;
  dopt.num_shards = 2;
  qc::dump_eri_sharded(mol_, opt_, p, dir_, "eri", dopt);
  const qc::EriDataset ds = qc::generate_eri_dataset(mol_, opt_);
  const qc::EriDataset back = io::read_compressed_dataset(dir_, "eri");
  EXPECT_EQ(back.label, ds.label);
  EXPECT_EQ(back.num_blocks, ds.num_blocks);
  EXPECT_LE(testutil::max_abs_diff(ds.values, back.values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(EriPipelineTest, ResumeReusesCompleteShards) {
  Params p;
  qc::EriDumpOptions dopt;
  dopt.num_shards = 3;
  const qc::EriDumpResult fresh =
      qc::dump_eri_sharded(mol_, opt_, p, dir_, "eri", dopt);
  EXPECT_EQ(fresh.shards_reused, 0u);

  // Everything already on disk: a resumed dump regenerates nothing.
  dopt.resume = true;
  const qc::EriDumpResult all =
      qc::dump_eri_sharded(mol_, opt_, p, dir_, "eri", dopt);
  EXPECT_EQ(all.shards_reused, 3u);
  EXPECT_EQ(all.blocks_reused, fresh.pipeline.meta.num_blocks);
  EXPECT_EQ(all.bytes_total, fresh.bytes_total);
  EXPECT_EQ(all.pipeline.chunks, 0u);
}

TEST_F(EriPipelineTest, ResumeRecoversFromMidDumpTruncation) {
  Params p;
  qc::EriDumpOptions dopt;
  dopt.num_shards = 3;
  qc::dump_eri_sharded(mol_, opt_, p, dir_, "eri", dopt);
  std::vector<std::vector<std::uint8_t>> golden;
  for (int s = 0; s < 3; ++s)
    golden.push_back(slurp(dir_ + "/" + "eri." + std::to_string(s)));

  // Simulate a crash mid-way through shard 1: cut it in half.  Shard 0
  // stays complete, shards 1 and 2 must be regenerated.
  const io::ShardLayout layout =
      io::make_shard_layout(golden.size() ? 24 : 0, 3);
  std::filesystem::resize_file(dir_ + "/eri.1", golden[1].size() / 2);
  std::filesystem::remove(dir_ + "/eri.2");
  EXPECT_TRUE(
      io::shard_is_complete(dir_, "eri", 0, layout.blocks_per_shard[0]));
  EXPECT_FALSE(
      io::shard_is_complete(dir_, "eri", 1, layout.blocks_per_shard[1]));
  EXPECT_FALSE(
      io::shard_is_complete(dir_, "eri", 2, layout.blocks_per_shard[2]));

  dopt.resume = true;
  const qc::EriDumpResult res =
      qc::dump_eri_sharded(mol_, opt_, p, dir_, "eri", dopt);
  EXPECT_EQ(res.shards_reused, 1u);
  EXPECT_EQ(res.blocks_reused, layout.blocks_per_shard[0]);

  // The deterministic plan makes the recovered files byte-identical to
  // the uninterrupted dump.
  for (int s = 0; s < 3; ++s)
    EXPECT_EQ(slurp(dir_ + "/eri." + std::to_string(s)), golden[s])
        << "shard " << s;
  EXPECT_LE(testutil::max_abs_diff(
                qc::generate_eri_dataset(mol_, opt_).values,
                io::read_compressed_dataset(dir_, "eri").values),
            p.error_bound * (1 + 1e-12));
}

TEST_F(EriPipelineTest, ShardIsCompleteRejectsWrongCount) {
  Params p;
  qc::EriDumpOptions dopt;
  dopt.num_shards = 2;
  qc::dump_eri_sharded(mol_, opt_, p, dir_, "eri", dopt);
  const io::ShardLayout layout = io::make_shard_layout(24, 2);
  EXPECT_TRUE(
      io::shard_is_complete(dir_, "eri", 0, layout.blocks_per_shard[0]));
  EXPECT_FALSE(
      io::shard_is_complete(dir_, "eri", 0, layout.blocks_per_shard[0] + 1));
  EXPECT_FALSE(io::shard_is_complete(dir_, "missing", 0, 1));
}

TEST_F(EriPipelineTest, PipelineMetricsAdvance) {
  const auto counter_value = [](const obs::MetricsSnapshot& snap,
                                std::string_view name) -> std::uint64_t {
    for (const auto& c : snap.counters)
      if (c.name == name) return c.value;
    ADD_FAILURE() << "counter not registered: " << name;
    return 0;
  };
  const auto before = obs::registry().snapshot();
  Params p;
  VectorSink sink;
  const qc::EriPipelineResult res =
      qc::compress_eri_stream(mol_, opt_, p, sink);
  const auto after = obs::registry().snapshot();
  EXPECT_GT(counter_value(after, obs::kQcPipelineChunks),
            counter_value(before, obs::kQcPipelineChunks));
  EXPECT_GT(res.chunks, 0u);
  EXPECT_GT(res.wall_ns, 0u);
  EXPECT_GT(res.compute_ns, 0u);
  EXPECT_GE(res.overlap_efficiency, 0.0);
  EXPECT_LE(res.overlap_efficiency, 1.0);
  EXPECT_EQ(res.bytes_written, sink.bytes().size());
}

// ------------------------------------------------ multi-producer compute

TEST_F(EriPipelineTest, MultiProducerStreamBytesIdenticalAcrossMatrix) {
  // The chunk stream is claimed dynamically and reordered on the
  // consumer side, so the container bytes must not depend on the
  // producer count, the OpenMP width inside each producer, or the queue
  // depth -- only the sequential golden bytes exist.
  Params p;
  qc::EriPipelineOptions seq;
  seq.pipelined = false;
  seq.async_io = false;
  const auto golden = stream_bytes(p, seq);
  ASSERT_FALSE(golden.empty());

  const int max_threads = omp_get_max_threads();
  for (const int threads : {1, max_threads}) {
    omp_set_num_threads(threads);
    for (const std::size_t producers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      for (const std::size_t depth : {std::size_t{1}, std::size_t{3}}) {
        qc::EriPipelineOptions popt;
        popt.producers = producers;
        popt.queue_depth = depth;
        popt.batch_blocks = 3;  // 24 blocks -> 8 chunks to interleave
        EXPECT_EQ(stream_bytes(p, popt), golden)
            << "threads=" << threads << " producers=" << producers
            << " depth=" << depth;
      }
    }
  }
  omp_set_num_threads(max_threads);
}

TEST_F(EriPipelineTest, MultiProducerReportsPerProducerStats) {
  Params p;
  qc::EriPipelineOptions popt;
  popt.producers = 3;
  popt.batch_blocks = 2;  // 24 blocks -> 12 chunks across 3 producers
  VectorSink sink;
  const qc::EriPipelineResult res =
      qc::compress_eri_stream(mol_, opt_, p, sink, popt);
  ASSERT_EQ(res.producers.size(), 3u);
  std::size_t chunks = 0;
  std::uint64_t busy = 0, stalled = 0;
  for (const qc::EriProducerStats& ps : res.producers) {
    chunks += ps.chunks;
    busy += ps.compute_ns;
    stalled += ps.stall_ns;
  }
  // Every chunk is computed by exactly one producer, and the aggregate
  // stage numbers are the per-producer sums.
  EXPECT_EQ(chunks, res.chunks);
  EXPECT_EQ(res.chunks, 12u);
  EXPECT_EQ(busy, res.compute_ns);
  EXPECT_EQ(stalled, res.compute_stall_ns);
  EXPECT_GT(busy, 0u);

  // The sequential path reports no per-producer breakdown.
  qc::EriPipelineOptions seq;
  seq.pipelined = false;
  VectorSink sink2;
  EXPECT_TRUE(
      qc::compress_eri_stream(mol_, opt_, p, sink2, seq).producers.empty());
  EXPECT_EQ(sink2.bytes(), sink.bytes());
}

TEST_F(EriPipelineTest, MultiProducerDumpShardsByteIdentical) {
  // dump_eri_sharded with N producers writes the same shard files and
  // manifest as the single-producer dump, byte for byte.
  Params p;
  constexpr int kShards = 3;
  qc::EriDumpOptions dopt;
  dopt.num_shards = kShards;
  qc::EriPipelineOptions one;
  one.producers = 1;
  qc::dump_eri_sharded(mol_, opt_, p, dir_, "p1", dopt, one);

  for (const std::size_t producers : {std::size_t{2}, std::size_t{4}}) {
    qc::EriPipelineOptions popt;
    popt.producers = producers;
    const std::string base = "p" + std::to_string(producers);
    const qc::EriDumpResult res =
        qc::dump_eri_sharded(mol_, opt_, p, dir_, base, dopt, popt);
    EXPECT_EQ(res.shards_total, static_cast<std::size_t>(kShards));
    for (int s = 0; s < kShards; ++s) {
      const std::string suffix = "." + std::to_string(s);
      EXPECT_EQ(slurp(dir_ + "/" + base + suffix),
                slurp(dir_ + "/p1" + suffix))
          << "producers=" << producers << " shard " << s;
    }
    EXPECT_EQ(slurp(dir_ + "/" + base + ".manifest"),
              slurp(dir_ + "/p1.manifest"))
        << "producers=" << producers;
  }
}

TEST_F(EriPipelineTest, MoreProducersThanChunksStillCompletes) {
  // Degenerate oversubscription: producers that find the stream already
  // fully claimed must hand their buffer back and exit cleanly.
  Params p;
  qc::EriPipelineOptions popt;
  popt.producers = 6;
  popt.batch_blocks = 12;  // 24 blocks -> only 2 chunks for 6 producers
  qc::EriPipelineOptions seq;
  seq.pipelined = false;
  EXPECT_EQ(stream_bytes(p, popt), stream_bytes(p, seq));
}

// ------------------------------------------------- solvers off the store

TEST(Mp2FromStore, MatchesDenseMp2) {
  qc::Molecule m;
  m.name = "H2O";
  m.atoms = {{"O", 8, {0, 0, 0}},
             {"H", 1, {0, 1.4305, 1.1093}},
             {"H", 1, {0, -1.4305, 1.1093}}};
  const qc::BasisSet basis = qc::make_sto3g_basis(m);
  const qc::EriTensor exact = qc::compute_eri_tensor(basis);
  const qc::ScfResult scf = qc::run_rhf(m, basis, exact);
  ASSERT_TRUE(scf.converged);
  const qc::Mp2Result dense = qc::run_mp2(m, basis, exact, scf);

  Params p;
  p.error_bound = 1e-10;
  const qc::CompressedEriStore store(basis, p);
  const qc::Mp2Result streamed = qc::run_mp2_from_store(m, basis, store, scf);
  EXPECT_LT(dense.correlation_energy, 0.0);
  EXPECT_NEAR(streamed.correlation_energy, dense.correlation_energy, 1e-8);
  EXPECT_NEAR(streamed.total_energy, dense.total_energy, 1e-8);

  // And the full workflow the pipeline closes: SCF + MP2 entirely off
  // the compressed stream.
  const qc::ScfResult scf2 = qc::run_rhf_from_store(m, basis, store);
  ASSERT_TRUE(scf2.converged);
  const qc::Mp2Result mp2 = qc::run_mp2_from_store(m, basis, store, scf2);
  EXPECT_NEAR(mp2.total_energy, dense.total_energy, 1e-6);
}

TEST(Mp2FromStore, RejectsMismatchedInputs) {
  qc::Molecule m;
  m.name = "H2";
  m.atoms = {{"H", 1, {0, 0, 0}}, {"H", 1, {0, 0, 1.4}}};
  const qc::BasisSet basis = qc::make_sto3g_basis(m);
  const qc::EriTensor exact = qc::compute_eri_tensor(basis);
  const qc::ScfResult scf = qc::run_rhf(m, basis, exact);
  Params p;
  const qc::CompressedEriStore store(basis, p);
  qc::ScfResult bad = scf;
  bad.converged = false;
  EXPECT_THROW(qc::run_mp2_from_store(m, basis, store, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace pastri
