// Stream-format stability tests: the PaSTRI byte format is a storage
// format, so accidental changes must be caught.  A fixed input, fixed
// parameters, and a golden digest pin the format; plus structural
// invariants of the header bytes.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "core/pastri.h"
#include "test_util.h"

namespace pastri {
namespace {

/// FNV-1a 64-bit digest (self-contained; avoids external hashing deps).
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic input: 4 noisy pattern blocks of 6x6.
std::vector<double> golden_input() {
  const BlockSpec spec{6, 6};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 4; ++b) {
    auto block = testutil::noisy_pattern_block(spec, 1e-7, b + 1);
    for (double& v : block) v *= 1e-5;
    data.insert(data.end(), block.begin(), block.end());
  }
  return data;
}

TEST(FormatStability, HeaderLayout) {
  const BlockSpec spec{6, 6};
  Params p;
  const auto stream = compress(golden_input(), spec, p);
  ASSERT_GE(stream.size(), 31u);
  // magic "PSTR" little-endian, version 3 (indexed container).
  EXPECT_EQ(stream[0], 0x50);  // 'P'
  EXPECT_EQ(stream[1], 0x53);  // 'S'
  EXPECT_EQ(stream[2], 0x54);  // 'T'
  EXPECT_EQ(stream[3], 0x52);  // 'R'
  EXPECT_EQ(stream[4], 3);     // version
  // index footer ends with "PIDX" little-endian.
  ASSERT_GE(stream.size(), 4u);
  EXPECT_EQ(stream[stream.size() - 4], 0x50);  // 'P'
  EXPECT_EQ(stream[stream.size() - 3], 0x49);  // 'I'
  EXPECT_EQ(stream[stream.size() - 2], 0x44);  // 'D'
  EXPECT_EQ(stream[stream.size() - 1], 0x58);  // 'X'
  // error bound as raw little-endian double at offset 5.
  double eb;
  std::memcpy(&eb, stream.data() + 5, 8);
  EXPECT_EQ(eb, 1e-10);
}

TEST(FormatStability, GoldenDigest) {
  // If this digest changes, the stream format changed: bump the version
  // byte and update the golden value deliberately.
  const BlockSpec spec{6, 6};
  Params p;
  const auto stream = compress(golden_input(), spec, p);
  const std::uint64_t digest = fnv1a(stream);
  // Self-check first (digest of empty = offset basis).
  EXPECT_EQ(fnv1a({}), 1469598103934665603ull);
  // Golden value recorded at format version 3 (indexed container; the
  // version-2 payload bytes are unchanged, v3 appends a 4-byte offset
  // table and a 20-byte footer to this stream).
  static constexpr std::uint64_t kGolden = 0x4caa9961110d33c5ull;
  EXPECT_EQ(digest, kGolden)
      << "stream format changed -- bump the version byte and update "
         "the golden digest deliberately";
  EXPECT_EQ(stream.size(), 183u);
  // Cross-run determinism of the digest within this process.
  EXPECT_EQ(fnv1a(compress(golden_input(), spec, p)), digest);
}

TEST(FormatStability, AllKnobsChangeOnlyPayload) {
  // Different metric/tree must keep the same header skeleton.
  const BlockSpec spec{6, 6};
  const auto data = golden_input();
  Params a, b;
  b.metric = ScalingMetric::AAR;
  b.tree = EcqTree::Tree2;
  const auto sa = compress(data, spec, a);
  const auto sb = compress(data, spec, b);
  // magic+version identical; metric/tree bytes differ at offsets 14/15.
  EXPECT_TRUE(std::equal(sa.begin(), sa.begin() + 5, sb.begin()));
  EXPECT_EQ(sa[13], 0u);  // bound mode absolute
  EXPECT_EQ(sa[14], 1u);  // ER
  EXPECT_EQ(sb[14], 3u);  // AAR
  EXPECT_EQ(sa[15], 5u);  // Tree5
  EXPECT_EQ(sb[15], 2u);  // Tree2
}

TEST(FormatStability, StreamsAreSelfDescribing) {
  // decompress() must need nothing beyond the bytes: round-trip through
  // a pure byte copy with no shared state.
  const BlockSpec spec{6, 6};
  Params p;
  p.metric = ScalingMetric::IS;
  p.tree = EcqTree::Tree4;
  p.error_bound = 1e-8;
  const auto data = golden_input();
  const auto stream = compress(data, spec, p);
  const std::vector<std::uint8_t> copy(stream.begin(), stream.end());
  const auto back = decompress(copy);
  EXPECT_LE(testutil::max_abs_diff(data, back), 1e-8 * (1 + 1e-12));
}

}  // namespace
}  // namespace pastri
