// Tests for the quantization calculus of Section IV-B.
#include <gtest/gtest.h>

#include <cmath>

#include "core/quantize.h"
#include "test_util.h"

namespace pastri {
namespace {

TEST(QuantSpec, PaperWorkedExample) {
  // Section IV-B: EB = 1e-10, typical P range [-1e-7, 1e-7] -> P_b = 10.
  const QuantSpec q = make_quant_spec(1e-7, 1e-10);
  EXPECT_EQ(q.pattern_bits, 10u);
  EXPECT_EQ(q.scale_bits, 10u);  // practical approach: S_b = P_b
  EXPECT_DOUBLE_EQ(q.pattern_binsize, 2e-10);
  EXPECT_DOUBLE_EQ(q.ec_binsize, 2e-10);
  EXPECT_DOUBLE_EQ(q.scale_binsize, std::ldexp(1.0, -9));
}

TEST(QuantSpec, BitsGrowWithDynamicRange) {
  const double eb = 1e-10;
  unsigned prev = 0;
  for (double ext : {1e-9, 1e-7, 1e-5, 1e-3, 1e-1, 10.0}) {
    const QuantSpec q = make_quant_spec(ext, eb);
    EXPECT_GT(q.pattern_bits, prev) << "ext=" << ext;
    prev = q.pattern_bits;
  }
}

TEST(QuantSpec, TinyPatternGetsMinimalBits) {
  const QuantSpec q = make_quant_spec(1e-12, 1e-10);
  EXPECT_EQ(q.pattern_bits, 2u);  // PQ_ext = 0 -> 1 magnitude bit + sign
}

TEST(QuantSpec, CappedAt54Bits) {
  const QuantSpec q = make_quant_spec(1e10, 1e-12);
  EXPECT_LE(q.pattern_bits, 54u);
}

TEST(EcqBin, PaperBinBoundaries) {
  // Fig. 6: 0 -> 1 bit, +-1 -> 2, +-[2,3] -> 3, +-[4,7] -> 4, ...
  EXPECT_EQ(ecq_bin(0), 1u);
  EXPECT_EQ(ecq_bin(1), 2u);
  EXPECT_EQ(ecq_bin(-1), 2u);
  EXPECT_EQ(ecq_bin(2), 3u);
  EXPECT_EQ(ecq_bin(3), 3u);
  EXPECT_EQ(ecq_bin(-3), 3u);
  EXPECT_EQ(ecq_bin(4), 4u);
  EXPECT_EQ(ecq_bin(7), 4u);
  EXPECT_EQ(ecq_bin(8), 5u);
  EXPECT_EQ(ecq_bin(-1024), 12u);
  EXPECT_EQ(ecq_bin(INT64_MIN), 65u);
}

TEST(EcqBin, SignedRangeFitsInBinBits) {
  // Every value of bin i must be representable in i bits two's complement.
  for (std::int64_t v = -40; v <= 40; ++v) {
    const unsigned b = ecq_bin(v);
    EXPECT_GE(v, -(std::int64_t{1} << (b - 1))) << v;
    EXPECT_LE(v, (std::int64_t{1} << (b - 1)) - 1) << v;
  }
}

TEST(BlockType, PaperClassification) {
  EXPECT_EQ(block_type(1), 0);
  EXPECT_EQ(block_type(2), 1);
  EXPECT_EQ(block_type(3), 2);
  EXPECT_EQ(block_type(6), 2);
  EXPECT_EQ(block_type(7), 3);
  EXPECT_EQ(block_type(22), 3);  // the paper's typical EC_b,max ceiling
}

class QuantizeRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(QuantizeRoundTrip, ErrorBoundHolds) {
  const auto [eb, noise] = GetParam();
  const BlockSpec spec{9, 14};
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto block = testutil::noisy_pattern_block(spec, noise, seed);
    const auto sel = select_pattern(block, spec, ScalingMetric::ER);
    const QuantizedBlock qb = quantize_block(block, spec, sel, eb);
    std::vector<double> out(block.size());
    dequantize_block(qb, spec, out);
    EXPECT_LE(testutil::max_abs_diff(block, out), eb * (1 + 1e-12))
        << "eb=" << eb << " noise=" << noise << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EbNoiseGrid, QuantizeRoundTrip,
    ::testing::Combine(::testing::Values(1e-6, 1e-9, 1e-10, 1e-11),
                       ::testing::Values(0.0, 1e-8, 1e-4, 1e-1)));

TEST(Quantize, ExactPatternNeedsNoOutliers) {
  // An exact pattern block quantizes with ECQ in {0, +-1}: only the
  // quantization error of P and S remains (Eq. 23: at most 2 extra bins).
  const BlockSpec spec{10, 20};
  const auto block = testutil::exact_pattern_block(spec, 21);
  const auto sel = select_pattern(block, spec, ScalingMetric::ER);
  const QuantizedBlock qb = quantize_block(block, spec, sel, 1e-10);
  EXPECT_LE(qb.ecb_max, 3u);
}

TEST(Quantize, OutlierCountMatchesNonzeroEcq) {
  const BlockSpec spec{5, 8};
  const auto block = testutil::noisy_pattern_block(spec, 1e-3, 2);
  const auto sel = select_pattern(block, spec, ScalingMetric::ER);
  const QuantizedBlock qb = quantize_block(block, spec, sel, 1e-9);
  std::size_t nz = 0;
  for (auto v : qb.ecq) nz += (v != 0);
  EXPECT_EQ(qb.num_outliers, nz);
}

TEST(Quantize, EcbMaxConsistentWithCodes) {
  const BlockSpec spec{5, 8};
  const auto block = testutil::noisy_pattern_block(spec, 1e-2, 3);
  const auto sel = select_pattern(block, spec, ScalingMetric::ER);
  const QuantizedBlock qb = quantize_block(block, spec, sel, 1e-10);
  unsigned mx = 1;
  for (auto v : qb.ecq) mx = std::max(mx, ecq_bin(v));
  EXPECT_EQ(qb.ecb_max, mx);
}

TEST(Quantize, AllZeroBlock) {
  const BlockSpec spec{4, 4};
  const std::vector<double> block(16, 0.0);
  const auto sel = select_pattern(block, spec, ScalingMetric::ER);
  const QuantizedBlock qb = quantize_block(block, spec, sel, 1e-10);
  EXPECT_EQ(qb.num_outliers, 0u);
  EXPECT_EQ(qb.ecb_max, 1u);
  std::vector<double> out(16, 1.0);
  dequantize_block(qb, spec, out);
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST(Quantize, ErrorBoundOnRealEriBlocks) {
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  const double eb = 1e-10;
  for (std::size_t b = 0; b < std::min<std::size_t>(ds.num_blocks, 40);
       ++b) {
    const auto block = ds.block(b);
    const auto sel = select_pattern(block, spec, ScalingMetric::ER);
    const QuantizedBlock qb = quantize_block(block, spec, sel, eb);
    std::vector<double> out(block.size());
    dequantize_block(qb, spec, out);
    EXPECT_LE(testutil::max_abs_diff(block, out), eb * (1 + 1e-12))
        << "block " << b;
  }
}

TEST(Quantize, ScaleQuantizationSymmetric) {
  // SQ must reconstruct S = -1 exactly and S = +1 within one bin.
  const QuantSpec q = make_quant_spec(1e-7, 1e-10);
  const double sbin = q.scale_binsize;
  const auto reconstruct = [&](double s) {
    const auto v = std::llround(s / sbin);
    const std::int64_t hi = (std::int64_t{1} << (q.scale_bits - 1)) - 1;
    const std::int64_t lo = -(std::int64_t{1} << (q.scale_bits - 1));
    return static_cast<double>(std::clamp<std::int64_t>(v, lo, hi)) * sbin;
  };
  EXPECT_DOUBLE_EQ(reconstruct(-1.0), -1.0);
  EXPECT_NEAR(reconstruct(1.0), 1.0, sbin);
  EXPECT_NEAR(reconstruct(0.37), 0.37, sbin / 2 * (1 + 1e-12));
}

}  // namespace
}  // namespace pastri
