// Tests for the C-linkage API.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "core/pastri_capi.h"
#include "test_util.h"

namespace {

using pastri::BlockSpec;

TEST(CApi, ParamsInitMatchesPaperDefaults) {
  pastri_params p;
  pastri_params_init(&p);
  EXPECT_EQ(p.error_bound, 1e-10);
  EXPECT_EQ(p.bound_mode, 0);
  EXPECT_EQ(p.metric, 1);  // ER
  EXPECT_EQ(p.tree, 5);    // Tree 5
  EXPECT_NE(p.allow_sparse, 0);
  pastri_params_init(nullptr);  // must not crash
}

TEST(CApi, RoundTrip) {
  const BlockSpec spec{9, 14};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 8; ++b) {
    const auto block = pastri::testutil::noisy_pattern_block(spec, 1e-6, b);
    data.insert(data.end(), block.begin(), block.end());
  }
  pastri_params p;
  pastri_params_init(&p);

  unsigned char* stream = nullptr;
  size_t stream_size = 0;
  ASSERT_EQ(pastri_compress_buffer(data.data(), data.size(),
                                   spec.num_sub_blocks,
                                   spec.sub_block_size, &p, &stream,
                                   &stream_size),
            PASTRI_OK);
  ASSERT_NE(stream, nullptr);
  EXPECT_LT(stream_size, data.size() * sizeof(double));

  double* out = nullptr;
  size_t out_count = 0;
  ASSERT_EQ(pastri_decompress_buffer(stream, stream_size, &out,
                                     &out_count),
            PASTRI_OK);
  ASSERT_EQ(out_count, data.size());
  double max_err = 0;
  for (size_t i = 0; i < out_count; ++i) {
    max_err = std::max(max_err, std::abs(out[i] - data[i]));
  }
  EXPECT_LE(max_err, p.error_bound * (1 + 1e-12));

  pastri_free(stream);
  pastri_free(out);
}

TEST(CApi, PeekReadsHeader) {
  const auto data = pastri::testutil::random_doubles(36 * 4, -1, 1);
  pastri_params p;
  pastri_params_init(&p);
  p.error_bound = 1e-9;
  unsigned char* stream = nullptr;
  size_t stream_size = 0;
  ASSERT_EQ(pastri_compress_buffer(data.data(), data.size(), 6, 6, &p,
                                   &stream, &stream_size),
            PASTRI_OK);
  double eb = 0;
  size_t nsb = 0, sbs = 0, blocks = 0;
  ASSERT_EQ(pastri_peek(stream, stream_size, &eb, &nsb, &sbs, &blocks),
            PASTRI_OK);
  EXPECT_EQ(eb, 1e-9);
  EXPECT_EQ(nsb, 6u);
  EXPECT_EQ(sbs, 6u);
  EXPECT_EQ(blocks, 4u);
  EXPECT_EQ(pastri_peek(stream, stream_size, nullptr, nullptr, nullptr,
                        nullptr),
            PASTRI_OK);
  pastri_free(stream);
}

TEST(CApi, InvalidArgumentErrors) {
  pastri_params p;
  pastri_params_init(&p);
  unsigned char* stream = nullptr;
  size_t size = 0;
  double value = 1.0;
  EXPECT_EQ(pastri_compress_buffer(&value, 1, 0, 0, &p, &stream, &size),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_NE(pastri_last_error()[0], '\0');
  EXPECT_EQ(pastri_compress_buffer(&value, 1, 1, 1, nullptr, &stream,
                                   &size),
            PASTRI_ERR_INVALID_ARGUMENT);
  // Size not a whole number of blocks:
  EXPECT_EQ(pastri_compress_buffer(&value, 1, 2, 3, &p, &stream, &size),
            PASTRI_ERR_INVALID_ARGUMENT);
  // Bad error bound:
  p.error_bound = -1.0;
  EXPECT_EQ(pastri_compress_buffer(&value, 1, 1, 1, &p, &stream, &size),
            PASTRI_ERR_INVALID_ARGUMENT);
}

TEST(CApi, CorruptStreamError) {
  const auto data = pastri::testutil::random_doubles(16, -1, 1);
  pastri_params p;
  pastri_params_init(&p);
  unsigned char* stream = nullptr;
  size_t size = 0;
  ASSERT_EQ(pastri_compress_buffer(data.data(), 16, 4, 4, &p, &stream,
                                   &size),
            PASTRI_OK);
  stream[0] ^= 0xFF;
  double* out = nullptr;
  size_t count = 0;
  EXPECT_EQ(pastri_decompress_buffer(stream, size, &out, &count),
            PASTRI_ERR_CORRUPT_STREAM);
  EXPECT_EQ(pastri_peek(stream, size, nullptr, nullptr, nullptr, nullptr),
            PASTRI_ERR_CORRUPT_STREAM);
  pastri_free(stream);
}

TEST(CApi, RandomAccessMatchesFullDecode) {
  const auto data = pastri::testutil::random_doubles(16 * 5, -1, 1, 11);
  pastri_params p;
  pastri_params_init(&p);
  unsigned char* stream = nullptr;
  size_t size = 0;
  ASSERT_EQ(pastri_compress_buffer(data.data(), data.size(), 4, 4, &p,
                                   &stream, &size),
            PASTRI_OK);
  double* full = nullptr;
  size_t full_count = 0;
  ASSERT_EQ(pastri_decompress_buffer(stream, size, &full, &full_count),
            PASTRI_OK);
  ASSERT_EQ(full_count, data.size());

  double block[16];
  for (size_t b = 0; b < 5; ++b) {
    ASSERT_EQ(pastri_decompress_block(stream, size, b, block, 16),
              PASTRI_OK);
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(block[i], full[b * 16 + i]) << b;
    }
  }
  double* range = nullptr;
  size_t range_count = 0;
  ASSERT_EQ(
      pastri_decompress_range(stream, size, 1, 3, &range, &range_count),
      PASTRI_OK);
  ASSERT_EQ(range_count, 3u * 16);
  for (size_t i = 0; i < range_count; ++i) {
    EXPECT_EQ(range[i], full[16 + i]);
  }

  // Bad requests: out-of-range block / too-small buffer are argument
  // errors, not stream corruption.
  EXPECT_EQ(pastri_decompress_block(stream, size, 5, block, 16),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pastri_decompress_block(stream, size, 0, block, 15),
            PASTRI_ERR_INVALID_ARGUMENT);
  double* out = nullptr;
  size_t count = 0;
  EXPECT_EQ(pastri_decompress_range(stream, size, 4, 2, &out, &count),
            PASTRI_ERR_INVALID_ARGUMENT);
  // Corrupt tail (the index footer) surfaces as a corrupt stream.
  stream[size - 1] ^= 0xFF;
  EXPECT_EQ(pastri_decompress_block(stream, size, 0, block, 16),
            PASTRI_ERR_CORRUPT_STREAM);

  pastri_free(range);
  pastri_free(full);
  pastri_free(stream);
}

TEST(CApi, StreamWritesBatchIdenticalFile) {
  // The streaming file writer must emit the exact bytes of
  // pastri_compress_buffer over the concatenated blocks.
  const BlockSpec spec{6, 9};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 10; ++b) {
    const auto block = pastri::testutil::noisy_pattern_block(spec, 1e-6, b);
    data.insert(data.end(), block.begin(), block.end());
  }
  pastri_params p;
  pastri_params_init(&p);

  const std::string path =
      (std::filesystem::temp_directory_path() / "capi_stream.pastri")
          .string();
  pastri_stream* s = nullptr;
  ASSERT_EQ(pastri_stream_open(path.c_str(), spec.num_sub_blocks,
                               spec.sub_block_size, &p, &s),
            PASTRI_OK);
  ASSERT_NE(s, nullptr);
  const size_t bs = spec.block_size();
  for (size_t b = 0; b < 10; ++b) {
    ASSERT_EQ(pastri_stream_put_block(s, data.data() + b * bs), PASTRI_OK)
        << b;
  }
  size_t total = 0;
  ASSERT_EQ(pastri_stream_finish(s, &total), PASTRI_OK);
  // put/finish after finish are errors, close is still required.
  EXPECT_EQ(pastri_stream_put_block(s, data.data()),
            PASTRI_ERR_INVALID_ARGUMENT);
  pastri_stream_close(s);

  unsigned char* reference = nullptr;
  size_t ref_size = 0;
  ASSERT_EQ(pastri_compress_buffer(data.data(), data.size(),
                                   spec.num_sub_blocks,
                                   spec.sub_block_size, &p, &reference,
                                   &ref_size),
            PASTRI_OK);
  EXPECT_EQ(total, ref_size);
  std::ifstream f(path, std::ios::binary);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, std::vector<unsigned char>(reference,
                                              reference + ref_size));
  pastri_free(reference);
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(CApi, StreamArgumentErrors) {
  pastri_params p;
  pastri_params_init(&p);
  pastri_stream* s = nullptr;
  EXPECT_EQ(pastri_stream_open(nullptr, 4, 4, &p, &s),
            PASTRI_ERR_INVALID_ARGUMENT);
  const std::string path =
      (std::filesystem::temp_directory_path() / "capi_stream_err.pastri")
          .string();
  EXPECT_EQ(pastri_stream_open(path.c_str(), 0, 0, &p, &s),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pastri_stream_open(path.c_str(), 4, 4, nullptr, &s),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pastri_stream_put_block(nullptr, nullptr),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pastri_stream_finish(nullptr, nullptr),
            PASTRI_ERR_INVALID_ARGUMENT);
  pastri_stream_close(nullptr);  // must be a no-op

  ASSERT_EQ(pastri_stream_open(path.c_str(), 4, 4, &p, &s), PASTRI_OK);
  EXPECT_EQ(pastri_stream_put_block(s, nullptr),
            PASTRI_ERR_INVALID_ARGUMENT);
  size_t total = 0;
  EXPECT_EQ(pastri_stream_finish(s, &total), PASTRI_OK);  // empty stream
  pastri_stream_close(s);
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(CApi, StatusTypeAndLastErrorMessage) {
  // Every entry point returns pastri_status; failures leave a non-empty
  // thread-local message, and the original accessor stays an alias.
  const pastri_status st =
      pastri_decompress_buffer(nullptr, 0, nullptr, nullptr);
  EXPECT_EQ(st, PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_NE(pastri_last_error_message()[0], '\0');
  EXPECT_STREQ(pastri_last_error_message(), pastri_last_error());
}

TEST(CApi, StreamOpenToBadPathIsIoError) {
  pastri_params p;
  pastri_params_init(&p);
  pastri_stream* s = nullptr;
  EXPECT_EQ(pastri_stream_open("/nonexistent-dir/x/y.pastri", 4, 4, &p, &s),
            PASTRI_ERR_IO);
  EXPECT_NE(pastri_last_error_message()[0], '\0');
}

TEST(CApi, MetricsSnapshotJson) {
  EXPECT_EQ(pastri_metrics_snapshot_json(nullptr),
            PASTRI_ERR_INVALID_ARGUMENT);

  // Run a tiny compress so codec counters are nonzero, then snapshot.
  const auto data = pastri::testutil::random_doubles(16, -1, 1);
  pastri_params p;
  pastri_params_init(&p);
  unsigned char* stream = nullptr;
  size_t size = 0;
  ASSERT_EQ(pastri_compress_buffer(data.data(), 16, 4, 4, &p, &stream,
                                   &size),
            PASTRI_OK);
  char* json = nullptr;
  ASSERT_EQ(pastri_metrics_snapshot_json(&json), PASTRI_OK);
  ASSERT_NE(json, nullptr);
  const std::string text(json);
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("pastri_core_blocks_encoded_total"),
            std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  pastri_free(json);
  pastri_free(stream);

  // Disable / re-enable and reset are safe to call at any time.
  pastri_metrics_enable(0);
  pastri_metrics_enable(1);
  pastri_metrics_reset();
  ASSERT_EQ(pastri_metrics_snapshot_json(&json), PASTRI_OK);
  pastri_free(json);
}

TEST(CApi, EmptyInput) {
  pastri_params p;
  pastri_params_init(&p);
  unsigned char* stream = nullptr;
  size_t size = 0;
  ASSERT_EQ(pastri_compress_buffer(nullptr, 0, 4, 4, &p, &stream, &size),
            PASTRI_OK);
  double* out = nullptr;
  size_t count = 123;
  ASSERT_EQ(pastri_decompress_buffer(stream, size, &out, &count),
            PASTRI_OK);
  EXPECT_EQ(count, 0u);
  pastri_free(stream);
  pastri_free(out);
}

}  // namespace
