// Tests for the Boys function, the numerical foundation of the ERI engine.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

#include "qc/boys.h"

namespace pastri::qc {
namespace {

/// Reference via adaptive Simpson integration of t^{2m} exp(-T t^2).
double boys_reference(double T, int m) {
  const int N = 20000;
  double sum = 0.0;
  for (int i = 0; i < N; ++i) {
    const double a = static_cast<double>(i) / N;
    const double b = static_cast<double>(i + 1) / N;
    const double fa = std::pow(a, 2 * m) * std::exp(-T * a * a);
    const double fb = std::pow(b, 2 * m) * std::exp(-T * b * b);
    const double mid = 0.5 * (a + b);
    const double fm = std::pow(mid, 2 * m) * std::exp(-T * mid * mid);
    sum += (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  }
  return sum;
}

TEST(Boys, ZeroArgumentClosedForm) {
  for (int m = 0; m <= kMaxBoysOrder; ++m) {
    EXPECT_DOUBLE_EQ(boys(0.0, m), 1.0 / (2.0 * m + 1.0)) << "m=" << m;
  }
}

TEST(Boys, F0IsScaledErf) {
  for (double T : {0.1, 0.5, 1.0, 4.0, 10.0, 30.0, 50.0, 200.0}) {
    const double expect =
        0.5 * std::sqrt(std::numbers::pi / T) * std::erf(std::sqrt(T));
    EXPECT_NEAR(boys(T, 0), expect, 1e-14 * std::max(1.0, expect))
        << "T=" << T;
  }
}

TEST(Boys, MatchesQuadratureAcrossOrders) {
  for (double T : {0.01, 0.7, 3.0, 12.0, 41.0, 60.0}) {
    for (int m : {0, 1, 2, 5, 9, 12}) {
      const double ref = boys_reference(T, m);
      EXPECT_NEAR(boys(T, m), ref, 1e-12 * std::max(1e-6, ref))
          << "T=" << T << " m=" << m;
    }
  }
}

TEST(Boys, DownwardRecursionIdentity) {
  // F_{m-1}(T) = (2T F_m(T) + exp(-T)) / (2m-1) must hold exactly-ish.
  for (double T : {0.2, 1.0, 5.0, 20.0, 41.9, 42.1, 100.0}) {
    double buf[kMaxBoysOrder + 1];
    boys(T, 12, std::span<double>(buf, 13));
    for (int m = 12; m > 0; --m) {
      const double lhs = buf[m - 1];
      const double rhs = (2.0 * T * buf[m] + std::exp(-T)) / (2.0 * m - 1.0);
      EXPECT_NEAR(lhs, rhs, 1e-13 * std::max(1e-10, std::abs(lhs)))
          << "T=" << T << " m=" << m;
    }
  }
}

TEST(Boys, DecreasesInOrder) {
  // t^{2m} <= t^{2(m-1)} on [0,1] => F_m(T) < F_{m-1}(T).
  for (double T : {0.0, 0.5, 3.0, 25.0, 80.0}) {
    double prev = boys(T, 0);
    for (int m = 1; m <= 16; ++m) {
      const double cur = boys(T, m);
      EXPECT_LT(cur, prev + 1e-300) << "T=" << T << " m=" << m;
      EXPECT_GT(cur, 0.0);
      prev = cur;
    }
  }
}

TEST(Boys, DecreasesInArgument) {
  for (int m : {0, 3, 8}) {
    double prev = boys(0.0, m);
    for (double T : {0.1, 1.0, 5.0, 20.0, 45.0, 100.0}) {
      const double cur = boys(T, m);
      EXPECT_LT(cur, prev) << "m=" << m << " T=" << T;
      prev = cur;
    }
  }
}

TEST(Boys, LargeArgumentAsymptotics) {
  // F_m(T) -> (2m-1)!! / (2T)^m * (1/2) sqrt(pi/T) for large T.
  for (int m : {0, 1, 2, 4}) {
    const double T = 300.0;
    double dfac = 1.0;
    for (int k = 2 * m - 1; k > 1; k -= 2) dfac *= k;
    const double expect = dfac / std::pow(2.0 * T, m) * 0.5 *
                          std::sqrt(std::numbers::pi / T);
    EXPECT_NEAR(boys(T, m), expect, 1e-10 * expect) << "m=" << m;
  }
}

TEST(Boys, ContinuousAcrossRegimeSwitch) {
  // The implementation switches algorithms at T = 42; values must agree
  // across the seam.  Keep the T gap tiny so the genuine slope of F_m
  // (|dF_0/dT| ~ 2e-3 at T = 42) does not mask a branch discrepancy.
  for (int m : {0, 2, 6, 12}) {
    const double below = boys(41.999999999, m);
    const double above = boys(42.000000001, m);
    EXPECT_NEAR(below, above, 1e-9 * below) << "m=" << m;
  }
}

TEST(Boys, SpanOverloadMatchesScalar) {
  double buf[kMaxBoysOrder + 1];
  boys(7.3, 10, std::span<double>(buf, 11));
  for (int m = 0; m <= 10; ++m) {
    EXPECT_DOUBLE_EQ(buf[m], boys(7.3, m)) << "m=" << m;
  }
}

// ------------------------------------------------- tabulated fast path

TEST(BoysTable, DifferentialAgainstSeriesOnDenseGrid) {
  // The ISSUE-level accuracy contract: the Taylor-interpolated table
  // stays within 1e-14 absolute of the exact series everywhere the ERI
  // engine can ask, including deliberately off-grid arguments and both
  // seams (tiny-T and the large-T switchover at 42).
  double exact[kMaxBoysOrder + 1];
  double fast[kMaxBoysOrder + 1];
  const int n = kMaxBoysOrder + 1;
  for (int i = 0; i <= 2000; ++i) {
    // Irrational-ish step so samples never coincide with the 1/16 grid.
    const double T = 50.0 * i / 2000.0 + (i % 7) * 1.3e-3;
    boys(T, kMaxBoysOrder, std::span<double>(exact, n));
    boys_table(T, kMaxBoysOrder, std::span<double>(fast, n));
    for (int m = 0; m <= kMaxBoysOrder; ++m) {
      ASSERT_NEAR(fast[m], exact[m], 1e-14) << "T=" << T << " m=" << m;
    }
  }
}

TEST(BoysTable, ScalarOverloadMatchesSpanAtSameOrder) {
  // The scalar overload is defined as the top entry of a span call of
  // the same order (Taylor at m, not recursion down from a higher top).
  double buf[kMaxBoysOrder + 1];
  for (double T : {0.0, 0.031249, 3.14159, 41.97, 42.03, 77.7}) {
    for (int m : {0, 1, 8, kMaxBoysOrder}) {
      boys_table(T, m, std::span<double>(buf, m + 1));
      EXPECT_DOUBLE_EQ(boys_table(T, m), buf[m]) << "T=" << T << " m=" << m;
    }
  }
}

TEST(BoysTable, SharedBranchesAreBitIdenticalToExact) {
  // Outside the tabulated window the table path falls through to the
  // same tiny-T / large-T code as the series, so those regimes must be
  // bit-identical, not merely close.
  for (double T : {0.0, 5e-15, 42.0000001, 60.0, 500.0}) {
    for (int m : {0, 4, kMaxBoysOrder}) {
      const double a = boys(T, m);
      const double b = boys_table(T, m);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
                std::bit_cast<std::uint64_t>(b))
          << "T=" << T << " m=" << m;
    }
  }
}

TEST(BoysTable, ModeDispatchSelectsThePath) {
  double a[4], b[4], c[4];
  const double T = 6.283;  // off-grid, inside the tabulated window
  boys(BoysMode::Exact, T, 3, std::span<double>(a, 4));
  boys(BoysMode::Table, T, 3, std::span<double>(b, 4));
  boys(T, 3, std::span<double>(c, 4));
  for (int m = 0; m <= 3; ++m) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[m]),
              std::bit_cast<std::uint64_t>(c[m]))
        << "Exact mode must be the series, m=" << m;
    EXPECT_NEAR(b[m], a[m], 1e-14) << "m=" << m;
  }
  // And the two paths genuinely differ in the last bits somewhere --
  // otherwise this test is vacuously dispatching to one implementation.
  bool any_diff = false;
  for (double Ts : {0.77, 1.01, 2.47, 6.283, 11.9, 23.456, 39.1}) {
    double ea[kMaxBoysOrder + 1], tb[kMaxBoysOrder + 1];
    boys(BoysMode::Exact, Ts, kMaxBoysOrder,
         std::span<double>(ea, kMaxBoysOrder + 1));
    boys(BoysMode::Table, Ts, kMaxBoysOrder,
         std::span<double>(tb, kMaxBoysOrder + 1));
    for (int m = 0; m <= kMaxBoysOrder; ++m)
      any_diff |= std::bit_cast<std::uint64_t>(ea[m]) !=
                  std::bit_cast<std::uint64_t>(tb[m]);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace pastri::qc
