// Tests for the Boys function, the numerical foundation of the ERI engine.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "qc/boys.h"

namespace pastri::qc {
namespace {

/// Reference via adaptive Simpson integration of t^{2m} exp(-T t^2).
double boys_reference(double T, int m) {
  const int N = 20000;
  double sum = 0.0;
  for (int i = 0; i < N; ++i) {
    const double a = static_cast<double>(i) / N;
    const double b = static_cast<double>(i + 1) / N;
    const double fa = std::pow(a, 2 * m) * std::exp(-T * a * a);
    const double fb = std::pow(b, 2 * m) * std::exp(-T * b * b);
    const double mid = 0.5 * (a + b);
    const double fm = std::pow(mid, 2 * m) * std::exp(-T * mid * mid);
    sum += (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  }
  return sum;
}

TEST(Boys, ZeroArgumentClosedForm) {
  for (int m = 0; m <= kMaxBoysOrder; ++m) {
    EXPECT_DOUBLE_EQ(boys(0.0, m), 1.0 / (2.0 * m + 1.0)) << "m=" << m;
  }
}

TEST(Boys, F0IsScaledErf) {
  for (double T : {0.1, 0.5, 1.0, 4.0, 10.0, 30.0, 50.0, 200.0}) {
    const double expect =
        0.5 * std::sqrt(std::numbers::pi / T) * std::erf(std::sqrt(T));
    EXPECT_NEAR(boys(T, 0), expect, 1e-14 * std::max(1.0, expect))
        << "T=" << T;
  }
}

TEST(Boys, MatchesQuadratureAcrossOrders) {
  for (double T : {0.01, 0.7, 3.0, 12.0, 41.0, 60.0}) {
    for (int m : {0, 1, 2, 5, 9, 12}) {
      const double ref = boys_reference(T, m);
      EXPECT_NEAR(boys(T, m), ref, 1e-12 * std::max(1e-6, ref))
          << "T=" << T << " m=" << m;
    }
  }
}

TEST(Boys, DownwardRecursionIdentity) {
  // F_{m-1}(T) = (2T F_m(T) + exp(-T)) / (2m-1) must hold exactly-ish.
  for (double T : {0.2, 1.0, 5.0, 20.0, 41.9, 42.1, 100.0}) {
    double buf[kMaxBoysOrder + 1];
    boys(T, 12, std::span<double>(buf, 13));
    for (int m = 12; m > 0; --m) {
      const double lhs = buf[m - 1];
      const double rhs = (2.0 * T * buf[m] + std::exp(-T)) / (2.0 * m - 1.0);
      EXPECT_NEAR(lhs, rhs, 1e-13 * std::max(1e-10, std::abs(lhs)))
          << "T=" << T << " m=" << m;
    }
  }
}

TEST(Boys, DecreasesInOrder) {
  // t^{2m} <= t^{2(m-1)} on [0,1] => F_m(T) < F_{m-1}(T).
  for (double T : {0.0, 0.5, 3.0, 25.0, 80.0}) {
    double prev = boys(T, 0);
    for (int m = 1; m <= 16; ++m) {
      const double cur = boys(T, m);
      EXPECT_LT(cur, prev + 1e-300) << "T=" << T << " m=" << m;
      EXPECT_GT(cur, 0.0);
      prev = cur;
    }
  }
}

TEST(Boys, DecreasesInArgument) {
  for (int m : {0, 3, 8}) {
    double prev = boys(0.0, m);
    for (double T : {0.1, 1.0, 5.0, 20.0, 45.0, 100.0}) {
      const double cur = boys(T, m);
      EXPECT_LT(cur, prev) << "m=" << m << " T=" << T;
      prev = cur;
    }
  }
}

TEST(Boys, LargeArgumentAsymptotics) {
  // F_m(T) -> (2m-1)!! / (2T)^m * (1/2) sqrt(pi/T) for large T.
  for (int m : {0, 1, 2, 4}) {
    const double T = 300.0;
    double dfac = 1.0;
    for (int k = 2 * m - 1; k > 1; k -= 2) dfac *= k;
    const double expect = dfac / std::pow(2.0 * T, m) * 0.5 *
                          std::sqrt(std::numbers::pi / T);
    EXPECT_NEAR(boys(T, m), expect, 1e-10 * expect) << "m=" << m;
  }
}

TEST(Boys, ContinuousAcrossRegimeSwitch) {
  // The implementation switches algorithms at T = 42; values must agree
  // across the seam.  Keep the T gap tiny so the genuine slope of F_m
  // (|dF_0/dT| ~ 2e-3 at T = 42) does not mask a branch discrepancy.
  for (int m : {0, 2, 6, 12}) {
    const double below = boys(41.999999999, m);
    const double above = boys(42.000000001, m);
    EXPECT_NEAR(below, above, 1e-9 * below) << "m=" << m;
  }
}

TEST(Boys, SpanOverloadMatchesScalar) {
  double buf[kMaxBoysOrder + 1];
  boys(7.3, 10, std::span<double>(buf, 11));
  for (int m = 0; m <= 10; ++m) {
    EXPECT_DOUBLE_EQ(buf[m], boys(7.3, m)) << "m=" << m;
  }
}

}  // namespace
}  // namespace pastri::qc
