// Random-access (indexed container) tests: block-at and range decodes
// must agree exactly with the full decompressor on mixed zero / sparse /
// dense inputs, legacy unindexed streams must keep decoding bit-exactly
// through the scan fallback, and corrupt or truncated index footers must
// be rejected with an exception.
#include <gtest/gtest.h>

#include <cstring>

#include "core/pastri.h"
#include "test_util.h"

namespace pastri {
namespace {

/// Blocks of deliberately mixed character: all-zero, near-zero sparse
/// (a few values above the bound), and dense noisy patterns, so every
/// per-block representation (zero/sparse/dense) appears in one stream.
std::vector<double> mixed_blocks(const BlockSpec& spec,
                                 std::size_t num_blocks) {
  std::vector<double> data;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::vector<double> block(spec.block_size(), 0.0);
    switch (b % 3) {
      case 0:
        break;  // zero block
      case 1:  // sparse: a handful of isolated significant values
        for (std::size_t i = 0; i < block.size(); i += 17) {
          block[i] = 1e-6 * static_cast<double>(i + b + 1);
        }
        break;
      default:
        block = testutil::noisy_pattern_block(spec, 1e-7, b);
        break;
    }
    data.insert(data.end(), block.begin(), block.end());
  }
  return data;
}

/// Rewrite an indexed (v3) stream as its legacy unindexed (v2) twin:
/// drop the offset table + footer and patch the version byte.  This is
/// byte-identical to what the v2 compressor used to emit.
std::vector<std::uint8_t> to_legacy(std::vector<std::uint8_t> stream) {
  EXPECT_GE(stream.size(), 20u);
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, stream.data() + stream.size() - 20, 8);
  stream.resize(index_offset);
  stream[4] = 2;  // kStreamVersionUnindexed
  return stream;
}

TEST(RandomAccess, BlockAtMatchesFullDecompress) {
  const BlockSpec spec{8, 8};
  const std::size_t nb = 12;
  const auto data = mixed_blocks(spec, nb);
  Params p;
  const auto stream = compress(data, spec, p);
  const auto full = decompress(stream);
  const std::size_t bs = spec.block_size();
  for (std::size_t b = 0; b < nb; ++b) {
    const auto one = decompress_block_at(stream, b);
    ASSERT_EQ(one.size(), bs);
    for (std::size_t i = 0; i < bs; ++i) {
      EXPECT_EQ(one[i], full[b * bs + i]) << "block " << b << " elem " << i;
    }
  }
}

TEST(RandomAccess, RangeMatchesFullDecompress) {
  const BlockSpec spec{6, 10};
  const std::size_t nb = 15;
  const auto data = mixed_blocks(spec, nb);
  Params p;
  const auto stream = compress(data, spec, p);
  const auto full = decompress(stream);
  const std::size_t bs = spec.block_size();
  // Several ranges, including empty, single, interior, and the whole.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 0}, {0, 1}, {4, 7}, {14, 1}, {0, nb}};
  for (const auto& [first, count] : ranges) {
    const auto part = decompress_range(stream, first, count);
    ASSERT_EQ(part.size(), count * bs);
    for (std::size_t i = 0; i < part.size(); ++i) {
      EXPECT_EQ(part[i], full[first * bs + i]);
    }
  }
}

TEST(RandomAccess, BlockReaderReusableAndOutOfOrder) {
  const BlockSpec spec{8, 8};
  const std::size_t nb = 9;
  const auto data = mixed_blocks(spec, nb);
  Params p;
  const auto stream = compress(data, spec, p);
  const auto full = decompress(stream);
  const BlockReader reader(stream);
  EXPECT_EQ(reader.num_blocks(), nb);
  EXPECT_EQ(reader.info().version, kStreamVersionIndexed);
  const std::size_t bs = spec.block_size();
  const std::size_t order[] = {8, 0, 4, 4, 7, 1};
  for (std::size_t b : order) {
    const auto one = reader.read_block(b);
    for (std::size_t i = 0; i < bs; ++i) {
      EXPECT_EQ(one[i], full[b * bs + i]);
    }
  }
}

TEST(RandomAccess, LegacyStreamDecodesBitExactly) {
  const BlockSpec spec{8, 8};
  const std::size_t nb = 10;
  const auto data = mixed_blocks(spec, nb);
  Params p;
  const auto v3 = compress(data, spec, p);
  const auto v2 = to_legacy(v3);
  ASSERT_LT(v2.size(), v3.size());
  EXPECT_EQ(peek_info(v2).version, kStreamVersionUnindexed);
  // Full decode and every random-access path agree bit-exactly across
  // the two container versions (same payload bytes, different framing).
  const auto full3 = decompress(v3);
  const auto full2 = decompress(v2);
  EXPECT_EQ(full2, full3);
  for (std::size_t b = 0; b < nb; ++b) {
    EXPECT_EQ(decompress_block_at(v2, b), decompress_block_at(v3, b));
  }
  EXPECT_EQ(decompress_range(v2, 3, 5), decompress_range(v3, 3, 5));
  // And the scan-built index equals the parsed one extent-for-extent.
  const BlockIndex i2 = read_block_index(v2);
  const BlockIndex i3 = read_block_index(v3);
  ASSERT_EQ(i2.num_blocks(), i3.num_blocks());
  for (std::size_t b = 0; b < nb; ++b) {
    EXPECT_EQ(i2.extent(b), i3.extent(b));
  }
}

TEST(RandomAccess, TruncatedFooterThrows) {
  const BlockSpec spec{8, 8};
  const auto data = mixed_blocks(spec, 6);
  Params p;
  auto stream = compress(data, spec, p);
  stream.resize(stream.size() - 1);  // clip into the footer
  EXPECT_THROW(BlockReader reader(stream), std::exception);
  EXPECT_THROW(decompress_block_at(stream, 0), std::exception);
}

TEST(RandomAccess, CorruptFooterMagicThrows) {
  const BlockSpec spec{8, 8};
  const auto data = mixed_blocks(spec, 6);
  Params p;
  auto stream = compress(data, spec, p);
  stream.back() ^= 0xFF;  // last magic byte
  EXPECT_THROW(BlockReader reader(stream), std::exception);
}

TEST(RandomAccess, FooterBlockCountMismatchThrows) {
  const BlockSpec spec{8, 8};
  const auto data = mixed_blocks(spec, 6);
  Params p;
  auto stream = compress(data, spec, p);
  stream[stream.size() - 12] ^= 1;  // footer num_blocks low byte
  EXPECT_THROW(BlockReader reader(stream), std::exception);
}

TEST(RandomAccess, CorruptOffsetTableThrows) {
  const BlockSpec spec{8, 8};
  const auto data = mixed_blocks(spec, 6);
  Params p;
  auto stream = compress(data, spec, p);
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, stream.data() + stream.size() - 20, 8);
  // Changing any length varint breaks the exact tiling of the payload
  // section, which parse() must detect.
  stream[index_offset] ^= 1;
  EXPECT_THROW(BlockReader reader(stream), std::exception);
}

TEST(RandomAccess, OutOfRangeRequestsThrow) {
  const BlockSpec spec{8, 8};
  const auto data = mixed_blocks(spec, 4);
  Params p;
  const auto stream = compress(data, spec, p);
  EXPECT_THROW(decompress_block_at(stream, 4), std::out_of_range);
  EXPECT_THROW(decompress_range(stream, 3, 2), std::out_of_range);
  EXPECT_THROW(decompress_range(stream, 0, SIZE_MAX), std::out_of_range);
  const BlockReader reader(stream);
  std::vector<double> wrong(spec.block_size() + 1);
  EXPECT_THROW(reader.read_block(0, wrong), std::invalid_argument);
}

TEST(RandomAccess, EmptyStreamHasEmptyIndex) {
  const BlockSpec spec{8, 8};
  Params p;
  const auto stream = compress(std::vector<double>{}, spec, p);
  const BlockReader reader(stream);
  EXPECT_EQ(reader.num_blocks(), 0u);
  EXPECT_TRUE(reader.index().empty());
  EXPECT_TRUE(reader.read_range(0, 0).empty());
  EXPECT_THROW(reader.read_block(0), std::out_of_range);
}

TEST(RandomAccess, IndexOverheadIsSmall) {
  // The ISSUE budget: the offset table + footer must cost < 0.5 % on
  // realistically sized blocks (36x36 doubles, the paper's GAMESS
  // (dd|dd) shape).
  const BlockSpec spec{36, 36};
  const auto data = mixed_blocks(spec, 50);
  Params p;
  const auto v3 = compress(data, spec, p);
  const auto v2 = to_legacy(v3);
  const double overhead =
      static_cast<double>(v3.size() - v2.size()) /
      static_cast<double>(v2.size());
  EXPECT_LT(overhead, 0.005);
}

}  // namespace
}  // namespace pastri
