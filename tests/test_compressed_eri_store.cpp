// Tests for the compressed ERI store (the Fig. 11 infrastructure).
#include <gtest/gtest.h>

#include <cmath>

#include "qc/compressed_eri_store.h"
#include "qc/sto3g.h"
#include "test_util.h"

namespace pastri::qc {
namespace {

Molecule h2o_molecule() {
  Molecule m;
  m.name = "H2O";
  m.atoms = {{"O", 8, {0, 0, 0}},
             {"H", 1, {0, 1.4305, 1.1093}},
             {"H", 1, {0, -1.4305, 1.1093}}};
  return m;
}

TEST(CompressedEriStore, MaterializeWithinBound) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor exact = compute_eri_tensor(basis);
  Params p;
  p.error_bound = 1e-10;
  const CompressedEriStore store(basis, p);
  const EriTensor restored = store.materialize();
  ASSERT_EQ(restored.size(), exact.size());
  EXPECT_LE(testutil::max_abs_diff(exact, restored),
            p.error_bound * (1 + 1e-12));
}

TEST(CompressedEriStore, GroupsByConfigurationClass) {
  // STO-3G water has s and p shells -> 2^4 = 16 quartet classes.
  const BasisSet basis = make_sto3g_basis(h2o_molecule());
  Params p;
  const CompressedEriStore store(basis, p);
  EXPECT_EQ(store.num_classes(), 16u);
  EXPECT_EQ(store.uncompressed_bytes(),
            basis.num_basis_functions() * basis.num_basis_functions() *
                basis.num_basis_functions() * basis.num_basis_functions() *
                sizeof(double));
  EXPECT_GT(store.ratio(), 1.0);
}

TEST(CompressedEriStore, ScfFromStoreMatchesExact) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor exact = compute_eri_tensor(basis);
  const ScfResult ref = run_rhf(mol, basis, exact);

  Params p;
  p.error_bound = 1e-10;
  const CompressedEriStore store(basis, p);
  // The Fig. 11 loop: decompress each "iteration"; here one materialize
  // feeds a full SCF.
  const ScfResult res = run_rhf(mol, basis, store.materialize());
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.total_energy, ref.total_energy, 1e-7);
}

TEST(CompressedEriStore, ShellBlockWithinBoundWithoutMaterialize) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  Params p;
  p.error_bound = 1e-10;
  const CompressedEriStore store(basis, p);
  const std::size_t ns = store.num_shells();
  ASSERT_EQ(ns, basis.shells.size());
  std::vector<double> exact;
  for (std::size_t a = 0; a < ns; ++a) {
    for (std::size_t b = 0; b < ns; ++b) {
      for (std::size_t c = 0; c < ns; ++c) {
        for (std::size_t d = 0; d < ns; ++d) {
          const auto blk = store.shell_block(a, b, c, d);
          const std::size_t want =
              basis.shells[a].num_components() *
              basis.shells[b].num_components() *
              basis.shells[c].num_components() *
              basis.shells[d].num_components();
          ASSERT_EQ(blk->size(), want);
          exact.resize(want);
          compute_eri_block(basis.shells[a], basis.shells[b],
                            basis.shells[c], basis.shells[d], exact);
          EXPECT_LE(testutil::max_abs_diff(exact, *blk),
                    p.error_bound * (1 + 1e-12));
        }
      }
    }
  }
}

TEST(CompressedEriStore, BlockCacheHitsAndEviction) {
  const BasisSet basis = make_sto3g_basis(h2o_molecule());
  Params p;
  CompressedEriStore store(basis, p);
  EXPECT_EQ(store.cache_hits(), 0u);
  const auto first = store.shell_block(0, 0, 0, 0);
  EXPECT_EQ(store.cache_misses(), 1u);
  const auto again = store.shell_block(0, 0, 0, 0);
  EXPECT_EQ(store.cache_hits(), 1u);
  EXPECT_EQ(first.get(), again.get());  // served from cache, same object

  // A capacity-1 cache must evict, yet previously returned blocks stay
  // valid and a re-fetch still decodes the same values.
  store.set_cache_capacity(1);
  const auto other = store.shell_block(0, 0, 0, 1);
  const std::size_t misses = store.cache_misses();
  const auto refetch = store.shell_block(0, 0, 0, 0);  // was evicted
  EXPECT_EQ(store.cache_misses(), misses + 1);
  EXPECT_EQ(*refetch, *first);
  EXPECT_FALSE(other->empty());

  EXPECT_THROW(store.shell_block(99, 0, 0, 0), std::out_of_range);
}

TEST(CompressedEriStore, CoarserBoundSmallerStore) {
  const BasisSet basis = make_sto3g_basis(h2o_molecule());
  Params fine, coarse;
  fine.error_bound = 1e-12;
  coarse.error_bound = 1e-8;
  EXPECT_LT(CompressedEriStore(basis, coarse).compressed_bytes(),
            CompressedEriStore(basis, fine).compressed_bytes());
}

}  // namespace
}  // namespace pastri::qc
