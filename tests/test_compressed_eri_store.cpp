// Tests for the compressed ERI store (the Fig. 11 infrastructure).
#include <gtest/gtest.h>

#include <cmath>

#include "qc/compressed_eri_store.h"
#include "qc/sto3g.h"
#include "test_util.h"

namespace pastri::qc {
namespace {

Molecule h2o_molecule() {
  Molecule m;
  m.name = "H2O";
  m.atoms = {{"O", 8, {0, 0, 0}},
             {"H", 1, {0, 1.4305, 1.1093}},
             {"H", 1, {0, -1.4305, 1.1093}}};
  return m;
}

TEST(CompressedEriStore, MaterializeWithinBound) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor exact = compute_eri_tensor(basis);
  Params p;
  p.error_bound = 1e-10;
  const CompressedEriStore store(basis, p);
  const EriTensor restored = store.materialize();
  ASSERT_EQ(restored.size(), exact.size());
  EXPECT_LE(testutil::max_abs_diff(exact, restored),
            p.error_bound * (1 + 1e-12));
}

TEST(CompressedEriStore, GroupsByConfigurationClass) {
  // STO-3G water has s and p shells -> 2^4 = 16 quartet classes.
  const BasisSet basis = make_sto3g_basis(h2o_molecule());
  Params p;
  const CompressedEriStore store(basis, p);
  EXPECT_EQ(store.num_classes(), 16u);
  EXPECT_EQ(store.uncompressed_bytes(),
            basis.num_basis_functions() * basis.num_basis_functions() *
                basis.num_basis_functions() * basis.num_basis_functions() *
                sizeof(double));
  EXPECT_GT(store.ratio(), 1.0);
}

TEST(CompressedEriStore, ScfFromStoreMatchesExact) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor exact = compute_eri_tensor(basis);
  const ScfResult ref = run_rhf(mol, basis, exact);

  Params p;
  p.error_bound = 1e-10;
  const CompressedEriStore store(basis, p);
  // The Fig. 11 loop: decompress each "iteration"; here one materialize
  // feeds a full SCF.
  const ScfResult res = run_rhf(mol, basis, store.materialize());
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.total_energy, ref.total_energy, 1e-7);
}

TEST(CompressedEriStore, CoarserBoundSmallerStore) {
  const BasisSet basis = make_sto3g_basis(h2o_molecule());
  Params fine, coarse;
  fine.error_bound = 1e-12;
  coarse.error_bound = 1e-8;
  EXPECT_LT(CompressedEriStore(basis, coarse).compressed_bytes(),
            CompressedEriStore(basis, fine).compressed_bytes());
}

}  // namespace
}  // namespace pastri::qc
