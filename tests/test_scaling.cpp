// Tests for pattern-scaling metric selection (Section IV-A, Fig. 4).
#include <gtest/gtest.h>

#include <cmath>

#include "core/scaling.h"
#include "test_util.h"

namespace pastri {
namespace {

using testutil::exact_pattern_block;

const ScalingMetric kAllMetrics[] = {ScalingMetric::FR, ScalingMetric::ER,
                                     ScalingMetric::AR, ScalingMetric::AAR,
                                     ScalingMetric::IS};

class ScalingMetricTest : public ::testing::TestWithParam<ScalingMetric> {};

TEST_P(ScalingMetricTest, ScalesAlwaysInUnitInterval) {
  const BlockSpec spec{12, 25};
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto block = testutil::random_doubles(spec.block_size(), -5.0,
                                                5.0, seed);
    const auto sel = select_pattern(block, spec, GetParam());
    ASSERT_EQ(sel.scales.size(), spec.num_sub_blocks);
    for (double s : sel.scales) {
      EXPECT_GE(s, -1.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST_P(ScalingMetricTest, ExactPatternRecovered) {
  // When sub-blocks truly are scalar multiples, every metric must find
  // scales that reconstruct the block exactly (up to fp roundoff).
  const BlockSpec spec{8, 30};
  const auto block = exact_pattern_block(spec, 3);
  const auto sel = select_pattern(block, spec, GetParam());
  const auto pattern = std::span<const double>(block).subspan(
      sel.pattern_sub_block * spec.sub_block_size, spec.sub_block_size);
  for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
    for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
      EXPECT_NEAR(block[j * spec.sub_block_size + i],
                  sel.scales[j] * pattern[i], 1e-12)
          << scaling_metric_name(GetParam()) << " j=" << j << " i=" << i;
    }
  }
}

TEST_P(ScalingMetricTest, AllZeroBlock) {
  const BlockSpec spec{4, 9};
  const std::vector<double> block(spec.block_size(), 0.0);
  const auto sel = select_pattern(block, spec, GetParam());
  for (double s : sel.scales) EXPECT_EQ(s, 0.0);
}

TEST_P(ScalingMetricTest, PatternScaleIsUnity) {
  // The pattern sub-block must scale to itself with coefficient ~1
  // (sign-corrected metrics may give exactly 1 as well).
  const BlockSpec spec{6, 20};
  const auto block = testutil::noisy_pattern_block(spec, 1e-3, 11);
  const auto sel = select_pattern(block, spec, GetParam());
  EXPECT_NEAR(std::abs(sel.scales[sel.pattern_sub_block]), 1.0, 1e-12);
}

TEST_P(ScalingMetricTest, SingleSubBlockDegenerate) {
  const BlockSpec spec{1, 16};
  const auto block = testutil::random_doubles(16, -2.0, 2.0, 5);
  const auto sel = select_pattern(block, spec, GetParam());
  EXPECT_EQ(sel.pattern_sub_block, 0u);
  EXPECT_NEAR(std::abs(sel.scales[0]), 1.0, 1e-12);
}

TEST_P(ScalingMetricTest, SubBlockSizeOneDegenerate) {
  const BlockSpec spec{10, 1};
  const auto block = testutil::random_doubles(10, -2.0, 2.0, 6);
  const auto sel = select_pattern(block, spec, GetParam());
  for (double s : sel.scales) {
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, ScalingMetricTest,
                         ::testing::ValuesIn(kAllMetrics),
                         [](const auto& info) {
                           return scaling_metric_name(info.param);
                         });

TEST(ScalingER, PicksSubBlockWithGlobalExtremum) {
  const BlockSpec spec{4, 5};
  std::vector<double> block(20, 0.1);
  block[2 * 5 + 3] = -7.5;  // extremum in sub-block 2
  const auto sel = select_pattern(block, spec, ScalingMetric::ER);
  EXPECT_EQ(sel.pattern_sub_block, 2u);
  EXPECT_EQ(sel.scales[2], 1.0);  // the pattern itself
  // Other sub-blocks scale by value-at-extremum-index ratio.
  EXPECT_NEAR(sel.scales[0], 0.1 / -7.5, 1e-15);
}

TEST(ScalingFR, PicksLargestFirstPoint) {
  const BlockSpec spec{3, 4};
  std::vector<double> block{0.5, 9, 9, 9,   //
                            -2.0, 1, 1, 1,  //
                            1.0, 3, 3, 3};
  const auto sel = select_pattern(block, spec, ScalingMetric::FR);
  EXPECT_EQ(sel.pattern_sub_block, 1u);  // |-2.0| largest first point
  EXPECT_NEAR(sel.scales[0], 0.5 / -2.0, 1e-15);
  EXPECT_NEAR(sel.scales[2], 1.0 / -2.0, 1e-15);
}

TEST(ScalingAR, UsesSignedAverages) {
  const BlockSpec spec{2, 4};
  std::vector<double> block{1, 1, 1, 1, -2, -2, -2, -2};
  const auto sel = select_pattern(block, spec, ScalingMetric::AR);
  EXPECT_EQ(sel.pattern_sub_block, 1u);  // |avg| = 2 wins
  EXPECT_NEAR(sel.scales[0], -0.5, 1e-15);
  EXPECT_NEAR(sel.scales[1], 1.0, 1e-15);
}

TEST(ScalingAAR, SignCorrectionRecoverNegatedSubBlock) {
  const BlockSpec spec{2, 6};
  std::vector<double> block(12);
  for (int i = 0; i < 6; ++i) {
    block[i] = 0.5 * (i + 1);
    block[6 + i] = -1.0 * (i + 1);  // exactly -2x the first sub-block
  }
  const auto sel = select_pattern(block, spec, ScalingMetric::AAR);
  EXPECT_EQ(sel.pattern_sub_block, 1u);
  EXPECT_NEAR(sel.scales[0], -0.5, 1e-12);  // sign-corrected
}

TEST(ScalingIS, LargestRangeWinsWithSignCorrection) {
  const BlockSpec spec{2, 4};
  std::vector<double> block{1, -1, 2, 0, -3, 3, -6, 0};
  const auto sel = select_pattern(block, spec, ScalingMetric::IS);
  EXPECT_EQ(sel.pattern_sub_block, 1u);  // range 9 beats 3
  // Sub-block 0 is -1/3 of the pattern: range ratio 3/9, negative corr.
  EXPECT_NEAR(sel.scales[0], -1.0 / 3.0, 1e-12);
}

TEST(ScalingER, RealEriBlocksWellMatched) {
  // On real ERI data the ER scaled pattern must explain the bulk of every
  // sub-block (correlation of |values|), the property Fig. 3 shows.
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  std::size_t checked = 0, well_matched = 0;
  for (std::size_t b = 0; b < ds.num_blocks && checked < 20; ++b) {
    const auto block = ds.block(b);
    double mx = 0;
    for (double v : block) mx = std::max(mx, std::abs(v));
    if (mx < 1e-8) continue;  // skip screened/far blocks
    ++checked;
    const auto sel = select_pattern(block, spec, ScalingMetric::ER);
    const auto pattern = block.subspan(
        sel.pattern_sub_block * spec.sub_block_size, spec.sub_block_size);
    double dev = 0;
    for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
      for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
        dev = std::max(dev, std::abs(block[j * spec.sub_block_size + i] -
                                     sel.scales[j] * pattern[i]));
      }
    }
    // Near-field blocks carry genuine multipole deviations (the paper's
    // Fig. 3(d) shows deviations up to a few percent of the amplitude);
    // the scaled pattern must still explain the bulk of the block.
    EXPECT_LT(dev, 0.6 * mx) << "block " << b;
    if (dev < 0.1 * mx) ++well_matched;
  }
  EXPECT_GT(checked, 0u);
  // The majority of blocks must be matched to better than 10 %.
  EXPECT_GE(2 * well_matched, checked);
}

TEST(ScalingNames, AllDistinct) {
  std::set<std::string> names;
  for (auto m : kAllMetrics) names.insert(scaling_metric_name(m));
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace pastri
