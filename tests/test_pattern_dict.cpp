// Cross-block pattern dictionary (container v4) tests: round-trip and
// error bounds, the cross-version decode matrix (v2/v3/v4 all decode,
// dict-off bytes stay bit-identical to the v3 golden digest), byte
// determinism across thread counts and batch sizes, random access and
// pipe decode of v4 containers, stats accounting, the C API context
// handles, decoded-value sharing in CompressedEriStore -- plus a fuzz
// suite for the new trailer section (truncations, corrupt footers,
// dangling defining ordinals).
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "core/pastri.h"
#include "core/pastri_capi.h"
#include "core/pattern_dict.h"
#include "core/stream.h"
#include "qc/compressed_eri_store.h"
#include "test_util.h"

namespace pastri {
namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// The format-stability golden input (same recipe as
/// test_format_stability.cpp): 4 noisy 6x6 pattern blocks.
std::vector<double> golden_input() {
  const BlockSpec spec{6, 6};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 4; ++b) {
    auto block = testutil::noisy_pattern_block(spec, 1e-7, b + 1);
    for (double& v : block) v *= 1e-5;
    data.insert(data.end(), block.begin(), block.end());
  }
  return data;
}

/// Blocks with deliberate cross-block redundancy: a few base patterns
/// recur (exactly rescaled or slightly perturbed), modelling shell-class
/// self-similarity across a tensor.  Zero blocks are mixed in so the
/// ordinal bookkeeping sees non-literal gaps.
std::vector<double> repetitive_blocks(const BlockSpec& spec,
                                      std::size_t num_blocks,
                                      std::uint64_t seed = 1234) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::array<std::vector<double>, 3> bases;
  for (auto& base : bases) {
    base.resize(spec.block_size());
    for (auto& x : base) x = 1e-5 * dist(gen);
  }
  std::vector<double> data;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    if (b % 7 == 5) {  // occasional all-zero block
      data.insert(data.end(), spec.block_size(), 0.0);
      continue;
    }
    const auto& base = bases[b % bases.size()];
    const double scale = std::ldexp(1.0, static_cast<int>(b / 3 % 4) - 2);
    for (std::size_t i = 0; i < base.size(); ++i) {
      double v = base[i] * scale;
      if (b % 5 == 4) v += 1e-9 * dist(gen);  // near match, not exact
      data.push_back(v);
    }
  }
  return data;
}

/// Rewrite an indexed (v3) stream as its legacy unindexed (v2) twin.
std::vector<std::uint8_t> to_legacy(std::vector<std::uint8_t> stream) {
  EXPECT_GE(stream.size(), 20u);
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, stream.data() + stream.size() - 20, 8);
  stream.resize(index_offset);
  stream[4] = 2;  // kStreamVersionUnindexed
  return stream;
}

Params dict_params(DictMode mode) {
  Params p;
  p.dict = mode;
  return p;
}

TEST(PatternDict, V4RoundTripWithinBound) {
  const BlockSpec spec{8, 12};
  const auto data = repetitive_blocks(spec, 24);
  Stats st;
  const auto v4 = compress(data, spec, dict_params(DictMode::On), &st);
  ASSERT_GE(v4.size(), 5u);
  EXPECT_EQ(v4[4], kStreamVersionDict);
  EXPECT_GT(st.dict_entries, 0u);
  const auto back = decompress(v4);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_LE(testutil::max_abs_diff(data, back), 1e-10 * (1 + 1e-12));
}

TEST(PatternDict, CrossVersionDecodeMatrix) {
  // One dataset, three container generations; every version must decode,
  // and since the dictionary only changes the *representation* of the
  // quantized pattern (never its values), all three decodes are equal.
  const BlockSpec spec{8, 12};
  const auto data = repetitive_blocks(spec, 18);
  const auto v3 = compress(data, spec, dict_params(DictMode::Off));
  const auto v2 = to_legacy(v3);
  const auto v4 = compress(data, spec, dict_params(DictMode::On));
  ASSERT_EQ(v2[4], 2u);
  ASSERT_EQ(v3[4], 3u);
  ASSERT_EQ(v4[4], 4u);
  const auto d2 = decompress(v2);
  const auto d3 = decompress(v3);
  const auto d4 = decompress(v4);
  EXPECT_EQ(d2, d3);
  EXPECT_EQ(d3, d4);
  EXPECT_LE(testutil::max_abs_diff(data, d4), 1e-10 * (1 + 1e-12));
}

TEST(PatternDict, DictOffKeepsGoldenDigest) {
  // The PR 5 golden digest: with the dictionary off (the default), the
  // bytes must remain bit-identical to the v3 format.
  const BlockSpec spec{6, 6};
  const auto def = compress(golden_input(), spec, Params{});
  EXPECT_EQ(def.size(), 183u);
  EXPECT_EQ(fnv1a(def), 0x4caa9961110d33c5ull);
  EXPECT_EQ(compress(golden_input(), spec, dict_params(DictMode::Off)),
            def);
}

TEST(PatternDict, RatioImprovesOnRepetitiveBlocks) {
  const BlockSpec spec{10, 16};
  const auto data = repetitive_blocks(spec, 60);
  Stats off_st, on_st;
  const auto v3 = compress(data, spec, dict_params(DictMode::Off), &off_st);
  const auto v4 = compress(data, spec, dict_params(DictMode::On), &on_st);
  EXPECT_LT(v4.size(), v3.size());
  EXPECT_GT(on_st.dict_exact_refs + on_st.dict_delta_refs, 0u);
  // Dict accounting only exists on the v4 side.
  EXPECT_EQ(off_st.dict_bits, 0u);
  EXPECT_EQ(off_st.dict_entries, 0u);
  EXPECT_GT(on_st.dict_bits, 0u);
}

TEST(PatternDict, AutoModeResolvesAgainstSubBlockSize) {
  const auto data_wide = repetitive_blocks({4, 16}, 8);
  const auto wide = compress(data_wide, {4, 16}, dict_params(DictMode::Auto));
  EXPECT_EQ(wide[4], kStreamVersionDict);  // sub_block_size >= 8

  const auto data_narrow = repetitive_blocks({16, 4}, 8);
  const auto narrow =
      compress(data_narrow, {16, 4}, dict_params(DictMode::Auto));
  EXPECT_EQ(narrow[4], kStreamVersionIndexed);  // tags would outweigh refs
  EXPECT_EQ(narrow, compress(data_narrow, {16, 4}, Params{}));
}

TEST(PatternDict, BytesDeterministicAcrossThreadsAndBatches) {
  const BlockSpec spec{8, 12};
  const auto data = repetitive_blocks(spec, 30);
  const std::size_t nb = 30;
  const auto reference = compress(data, spec, dict_params(DictMode::On));
  for (const int threads : {1, 4}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{0}}) {
      Params p = dict_params(DictMode::On);
      p.num_threads = threads;
      VectorSink sink;
      StreamWriter writer(
          sink, spec, p,
          StreamWriterOptions{.batch_blocks = batch, .expected_blocks = nb});
      // Feed in uneven slices so batch boundaries never align with blocks.
      std::size_t off = 0;
      const std::size_t bs = spec.block_size();
      while (off < data.size()) {
        const std::size_t n = std::min<std::size_t>(bs + 5, data.size() - off);
        writer.put_values(std::span(data).subspan(off, n));
        off += n;
      }
      writer.finish();
      EXPECT_EQ(sink.take(), reference)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

TEST(PatternDict, ContextReuseAcrossContainers) {
  // One CodecContext, two containers: begin_container must reset the
  // dictionary, so both containers come out byte-identical.
  const BlockSpec spec{8, 12};
  const auto data = repetitive_blocks(spec, 12);
  CodecContext ctx(spec, dict_params(DictMode::On));
  EXPECT_TRUE(ctx.dict_enabled());
  std::vector<std::uint8_t> first;
  for (int round = 0; round < 2; ++round) {
    VectorSink sink;
    StreamWriter writer(sink, ctx,
                        StreamWriterOptions{.expected_blocks = 12});
    writer.put_values(data);
    writer.finish();
    if (round == 0) first = sink.take();
    else EXPECT_EQ(sink.take(), first);
  }
  EXPECT_EQ(first, compress(data, spec, dict_params(DictMode::On)));
}

TEST(PatternDict, RandomAccessMatchesFullDecode) {
  const BlockSpec spec{8, 12};
  const std::size_t nb = 21;
  const auto data = repetitive_blocks(spec, nb);
  const auto v4 = compress(data, spec, dict_params(DictMode::On));
  const auto full = decompress(v4);
  const BlockReader reader(v4);
  ASSERT_EQ(reader.num_blocks(), nb);
  ASSERT_NE(reader.dict_context(), nullptr);
  EXPECT_GT(reader.dict_context()->dict().size(), 0u);
  const std::size_t bs = spec.block_size();
  for (std::size_t b = 0; b < nb; ++b) {
    const auto one = reader.read_block(b);
    for (std::size_t i = 0; i < bs; ++i) {
      ASSERT_EQ(one[i], full[b * bs + i]) << "block " << b;
    }
  }
  const auto range = reader.read_range(5, 9);
  for (std::size_t i = 0; i < range.size(); ++i) {
    ASSERT_EQ(range[i], full[5 * bs + i]);
  }
  // v2/v3 readers expose no dictionary context.
  const auto v3 = compress(data, spec, Params{});
  EXPECT_EQ(BlockReader(v3).dict_context(), nullptr);
}

TEST(PatternDict, StreamConsumerDecodesV4OverSmallChunks) {
  const BlockSpec spec{8, 12};
  const auto data = repetitive_blocks(spec, 17);
  const auto v4 = compress(data, spec, dict_params(DictMode::On));
  const auto full = decompress(v4);
  SpanSource source(v4);
  StreamConsumer consumer(source,
                          StreamConsumerOptions{.chunk_bytes = 64,
                                                .batch_blocks = 3});
  std::vector<double> out;
  std::vector<double> buf(41);
  for (;;) {
    const std::size_t n = consumer.read_values(buf);
    if (n == 0) break;
    out.insert(out.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(out, full);
}

TEST(PatternDict, StatsAccountingIsExact) {
  const BlockSpec spec{8, 12};
  const auto data = repetitive_blocks(spec, 24);
  Stats st;
  const auto v4 = compress(data, spec, dict_params(DictMode::On), &st);
  // Every written field is accounted to exactly one bucket; the only
  // unaccounted bits are the per-payload byte-alignment padding (at most
  // 7 bits per block).
  EXPECT_EQ(st.output_bytes, v4.size());
  const std::size_t accounted = st.header_bits + st.pattern_bits +
                                st.scale_bits + st.ecq_bits + st.dict_bits;
  EXPECT_LE(accounted, 8 * st.output_bytes);
  EXPECT_LE(8 * st.output_bytes - accounted, 7 * st.num_blocks);
  EXPECT_EQ(st.dict_entries + st.dict_exact_refs + st.dict_delta_refs +
                st.blocks_by_type[0],
            st.num_blocks);
  const std::string json = st.to_json();
  EXPECT_NE(json.find("\"dict_bits\""), std::string::npos);
  EXPECT_NE(json.find("\"dict_entries\""), std::string::npos);
}

TEST(PatternDict, EriStoreSharesIdenticalDecodedBlocks) {
  // Two identical shells at the same center: quartets (0,0,0,0) and
  // (1,1,1,1) decode to identical values, so the store's value dedup
  // must hand out one shared vector for both cache entries.
  qc::BasisSet basis;
  qc::Shell sh;
  sh.l = 1;
  sh.center = {0, 0, 0};
  sh.primitives = {{1.2, 0.7}, {0.4, 0.5}};
  sh.normalize();
  qc::Shell other = sh;  // same class, different radial part
  other.primitives = {{0.9, 1.0}};
  other.normalize();
  basis.shells = {sh, sh, other};
  Params p;
  const qc::CompressedEriStore store(basis, p);
  const auto a = store.shell_block(0, 0, 0, 0);
  const auto b = store.shell_block(1, 1, 1, 1);
  ASSERT_EQ(*a, *b);
  EXPECT_EQ(a.get(), b.get()) << "identical decoded blocks not shared";
  EXPECT_EQ(store.cache_unique_blocks(), 1u);
  EXPECT_EQ(store.cache_bytes(), a->size() * sizeof(double));
  // A genuinely different quartet gets its own storage.
  const auto c = store.shell_block(2, 2, 2, 2);
  ASSERT_NE(*c, *a);
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(store.cache_unique_blocks(), 2u);
  EXPECT_EQ(store.cache_bytes(), 2 * a->size() * sizeof(double));
}

TEST(PatternDict, CApiContextRoundTrip) {
  const BlockSpec spec{8, 12};
  const auto data = repetitive_blocks(spec, 12);
  pastri_params cp;
  pastri_params_init(&cp);
  EXPECT_EQ(cp.dict_mode, 0);
  cp.dict_mode = 1;
  pastri_ctx* ctx = nullptr;
  ASSERT_EQ(pastri_ctx_create(spec.num_sub_blocks, spec.sub_block_size, &cp,
                              &ctx),
            PASTRI_OK);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(pastri_ctx_dict_enabled(ctx), 1);
  unsigned char* out = nullptr;
  size_t out_size = 0;
  ASSERT_EQ(pastri_ctx_compress_buffer(ctx, data.data(), data.size(), &out,
                                       &out_size),
            PASTRI_OK);
  ASSERT_GE(out_size, 5u);
  EXPECT_EQ(out[4], kStreamVersionDict);
  // Matches the C++ compressor byte for byte.
  const auto cxx = compress(data, spec, dict_params(DictMode::On));
  ASSERT_EQ(out_size, cxx.size());
  EXPECT_EQ(std::memcmp(out, cxx.data(), out_size), 0);
  // And the generic C decompressor reads it back.
  double* values = nullptr;
  size_t count = 0;
  ASSERT_EQ(pastri_decompress_buffer(out, out_size, &values, &count),
            PASTRI_OK);
  ASSERT_EQ(count, data.size());
  EXPECT_LE(testutil::max_abs_diff(std::span(values, count), data),
            1e-10 * (1 + 1e-12));
  pastri_free(values);
  pastri_free(out);
  pastri_ctx_destroy(ctx);
}

TEST(PatternDict, CApiStatusNamesAndValidation) {
  EXPECT_STREQ(pastri_status_name(PASTRI_OK), "PASTRI_OK");
  EXPECT_STREQ(pastri_status_name(PASTRI_ERR_CORRUPT_STREAM),
               "PASTRI_ERR_CORRUPT_STREAM");
  EXPECT_STREQ(pastri_status_name(static_cast<pastri_status>(-99)),
               "PASTRI_ERR_UNKNOWN");
  pastri_params cp;
  pastri_params_init(&cp);
  cp.dict_mode = 7;  // out of range
  pastri_ctx* ctx = nullptr;
  EXPECT_EQ(pastri_ctx_create(4, 8, &cp, &ctx),
            PASTRI_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(ctx, nullptr);
  EXPECT_NE(std::string(pastri_last_error_message()), "");
}

// ---- Fuzz / corruption suite -------------------------------------------

/// A v4 stream where every non-zero block has the same pattern: exactly
/// one dictionary entry, defined by block 0, so the trailer section is
/// two bytes (count varint + one ordinal varint) at a known offset.
std::vector<std::uint8_t> single_entry_v4(const BlockSpec& spec,
                                          std::size_t num_blocks) {
  std::vector<double> data;
  std::vector<double> base(spec.block_size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = 1e-5 * std::sin(0.7 * static_cast<double>(i + 1));
  }
  for (std::size_t b = 0; b < num_blocks; ++b) {
    data.insert(data.end(), base.begin(), base.end());
  }
  return compress(data, spec, dict_params(DictMode::On));
}

struct DictLayout {
  std::uint64_t dict_offset = 0;
  std::uint64_t index_offset = 0;
};

DictLayout footer_of(const std::vector<std::uint8_t>& v4) {
  DictLayout l;
  std::memcpy(&l.dict_offset, v4.data() + v4.size() - 28, 8);
  std::memcpy(&l.index_offset, v4.data() + v4.size() - 20, 8);
  return l;
}

TEST(DictFuzz, TruncatedEverywhereNeverCrashes) {
  const auto v4 = single_entry_v4({6, 10}, 9);
  for (std::size_t len = 0; len < v4.size(); ++len) {
    const std::vector<std::uint8_t> cut(v4.begin(), v4.begin() + len);
    EXPECT_THROW((void)decompress(cut), std::exception) << "len " << len;
    EXPECT_THROW(BlockReader{cut}, std::exception) << "len " << len;
  }
  // The untouched stream still decodes (the loop above cannot pass
  // vacuously).
  EXPECT_EQ(decompress(v4).size(), 9u * 60u);
}

TEST(DictFuzz, DanglingDefiningOrdinalRejected) {
  const BlockSpec spec{6, 10};
  const std::size_t nb = 9;
  auto v4 = single_entry_v4(spec, nb);
  const DictLayout l = footer_of(v4);
  // Section layout: varint count (1) + varint defining ordinal (0).
  ASSERT_EQ(l.index_offset - l.dict_offset, 2u);
  ASSERT_EQ(v4[l.dict_offset], 1u);
  ASSERT_EQ(v4[l.dict_offset + 1], 0u);
  v4[l.dict_offset + 1] = static_cast<std::uint8_t>(nb);  // >= num_blocks
  EXPECT_THROW(BlockReader{v4}, std::runtime_error);
  EXPECT_THROW((void)decompress(v4), std::runtime_error);
}

TEST(DictFuzz, NonLiteralDefiningOrdinalRejected) {
  // Block 1 is an ExactRef, not a Literal -- claiming it defined the
  // entry must be rejected, not chased into a reference cycle.
  auto v4 = single_entry_v4({6, 10}, 9);
  const DictLayout l = footer_of(v4);
  ASSERT_EQ(v4[l.dict_offset + 1], 0u);
  v4[l.dict_offset + 1] = 1;
  EXPECT_THROW(BlockReader{v4}, std::runtime_error);
}

TEST(DictFuzz, OverstatedEntryCountRejected) {
  auto v4 = single_entry_v4({6, 10}, 9);
  const DictLayout l = footer_of(v4);
  v4[l.dict_offset] = 0x7f;  // claims 127 entries, section holds 1
  EXPECT_THROW(BlockReader{v4}, std::runtime_error);
}

TEST(DictFuzz, CorruptFooterRejected) {
  const auto good = single_entry_v4({6, 10}, 9);
  {  // bad magic
    auto bad = good;
    bad[bad.size() - 1] ^= 0xff;
    EXPECT_THROW(BlockReader{bad}, std::runtime_error);
  }
  {  // dict_offset beyond index_offset
    auto bad = good;
    const DictLayout l = footer_of(bad);
    const std::uint64_t off = l.index_offset + 1;
    std::memcpy(bad.data() + bad.size() - 28, &off, 8);
    EXPECT_THROW(BlockReader{bad}, std::runtime_error);
  }
  {  // footer block count disagrees with the header
    auto bad = good;
    const std::uint64_t nb = 1000;
    std::memcpy(bad.data() + bad.size() - 12, &nb, 8);
    EXPECT_THROW(BlockReader{bad}, std::runtime_error);
  }
}

/// Mutants whose *declared* decoded size is absurd are skipped (the
/// same malloc-limit mimicry as test_fuzz_robustness.cpp: under ASan a
/// giant allocation aborts instead of throwing std::bad_alloc).
bool decode_in_budget(std::span<const std::uint8_t> s) {
  constexpr std::size_t kMaxDecodedDoubles = std::size_t{1} << 22;
  try {
    const StreamInfo info = peek_info(s);
    const std::size_t bs = info.spec.block_size();
    return bs == 0 || info.num_blocks <= kMaxDecodedDoubles / bs;
  } catch (const std::exception&) {
    return true;  // corrupt header: decoding throws before allocating
  }
}

TEST(DictFuzz, RandomMutationsNeverCrash) {
  const auto v4 = single_entry_v4({8, 12}, 12);
  std::mt19937_64 gen(0xD1C7);
  for (int t = 0; t < 120; ++t) {
    auto mutated = v4;
    const int flips = 1 + static_cast<int>(gen() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[gen() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (gen() % 8));
    }
    if (gen() % 4 == 0) {
      mutated.resize(5 + gen() % mutated.size());
    }
    if (!decode_in_budget(mutated)) continue;
    // Success or a clean std::exception are both fine; crashes and
    // sanitizer reports are not.
    try {
      (void)decompress(mutated);
    } catch (const std::exception&) {
    }
    try {
      const BlockReader reader(mutated);
      (void)reader.read_range(0, std::min<std::size_t>(reader.num_blocks(),
                                                       12));
    } catch (const std::exception&) {
    }
    try {
      SpanSource source(mutated);
      StreamConsumer consumer(source,
                              StreamConsumerOptions{.chunk_bytes = 32});
      std::vector<double> buf(96);
      while (consumer.read_values(buf) != 0) {
      }
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace pastri
