// End-to-end tests for the PaSTRI compressor: stream format, round-trip
// error bound under every metric/tree combination, block edge cases,
// statistics accounting, and corrupt-stream handling.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pastri.h"
#include "core/stream.h"
#include "test_util.h"

namespace pastri {
namespace {

using testutil::max_abs_diff;

class CompressorMatrix
    : public ::testing::TestWithParam<std::tuple<ScalingMetric, EcqTree>> {
};

TEST_P(CompressorMatrix, RoundTripWithinBoundOnNoisyPatterns) {
  const auto [metric, tree] = GetParam();
  const BlockSpec spec{16, 24};
  Params p;
  p.metric = metric;
  p.tree = tree;
  p.error_bound = 1e-10;
  // 12 blocks with varying noise magnitude, including exact patterns.
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 12; ++b) {
    const double noise = b == 0 ? 0.0 : std::pow(10.0, -12.0 + b);
    auto block = testutil::noisy_pattern_block(spec, noise, b);
    data.insert(data.end(), block.begin(), block.end());
  }
  const auto stream = compress(data, spec, p);
  const auto back = decompress(stream);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    MetricTreeGrid, CompressorMatrix,
    ::testing::Combine(
        ::testing::Values(ScalingMetric::FR, ScalingMetric::ER,
                          ScalingMetric::AR, ScalingMetric::AAR,
                          ScalingMetric::IS),
        ::testing::Values(EcqTree::Tree1, EcqTree::Tree2, EcqTree::Tree3,
                          EcqTree::Tree4, EcqTree::Tree5)),
    [](const auto& info) {
      return std::string(scaling_metric_name(std::get<0>(info.param))) +
             "_" + ecq_tree_name(std::get<1>(info.param));
    });

class CompressorEbSweep : public ::testing::TestWithParam<double> {};

TEST_P(CompressorEbSweep, RealEriDataWithinBound) {
  const double eb = GetParam();
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  p.error_bound = eb;
  const auto stream = compress(ds.values, spec, p);
  const auto back = decompress(stream);
  EXPECT_LE(max_abs_diff(ds.values, back), eb * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(PaperEbRange, CompressorEbSweep,
                         ::testing::Values(1e-9, 1e-10, 1e-11, 1e-6, 1e-13));

TEST(Compressor, HybridShapeRoundTrip) {
  const auto& ds = testutil::hybrid_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  const auto stream = compress(ds.values, spec, p);
  const auto back = decompress(stream);
  EXPECT_LE(max_abs_diff(ds.values, back), p.error_bound * (1 + 1e-12));
}

TEST(Compressor, AllZeroDataCompressesToAlmostNothing) {
  const BlockSpec spec{36, 36};
  const std::vector<double> data(spec.block_size() * 50, 0.0);
  Params p;
  Stats st;
  const auto stream = compress(data, spec, p, &st);
  // 50 zero blocks: ~2 bytes each plus the global header.
  EXPECT_LT(stream.size(), 300u);
  EXPECT_EQ(st.blocks_by_type[0], 50u);
  const auto back = decompress(stream);
  for (double v : back) EXPECT_EQ(v, 0.0);
}

TEST(Compressor, ValuesBelowBoundBecomeZero) {
  const BlockSpec spec{4, 4};
  std::vector<double> data(16, 5e-11);  // all below EB = 1e-10
  Params p;
  const auto stream = compress(data, spec, p);
  const auto back = decompress(stream);
  for (double v : back) EXPECT_EQ(v, 0.0);
}

TEST(Compressor, SingleSubBlock) {
  const BlockSpec spec{1, 64};
  const auto data = testutil::random_doubles(64, -1.0, 1.0);
  Params p;
  const auto back = decompress(compress(data, spec, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

TEST(Compressor, SubBlockSizeOne) {
  const BlockSpec spec{64, 1};
  const auto data = testutil::random_doubles(64, -1.0, 1.0);
  Params p;
  const auto back = decompress(compress(data, spec, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

TEST(Compressor, OneByOneBlock) {
  const BlockSpec spec{1, 1};
  const std::vector<double> data{0.25, -0.5, 1e-20, 0.0};
  Params p;
  const auto back = decompress(compress(data, spec, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

TEST(Compressor, EmptyInput) {
  const BlockSpec spec{6, 6};
  Params p;
  const auto stream = compress(std::span<const double>{}, spec, p);
  const auto back = decompress(stream);
  EXPECT_TRUE(back.empty());
}

TEST(Compressor, RejectsPartialBlock) {
  const BlockSpec spec{6, 6};
  const std::vector<double> data(35, 1.0);  // not a multiple of 36
  Params p;
  EXPECT_THROW(compress(data, spec, p), std::invalid_argument);
}

TEST(Compressor, RejectsBadParams) {
  const BlockSpec spec{6, 6};
  const std::vector<double> data(36, 1.0);
  Params p;
  p.error_bound = 0.0;
  EXPECT_THROW(compress(data, spec, p), std::invalid_argument);
  p.error_bound = -1e-10;
  EXPECT_THROW(compress(data, spec, p), std::invalid_argument);
}

TEST(Compressor, RejectsBadSpec) {
  const BlockSpec spec{0, 6};
  Params p;
  EXPECT_THROW(compress(std::span<const double>{}, spec, p),
               std::invalid_argument);
}

TEST(Compressor, PeekInfoMatchesParams) {
  const BlockSpec spec{9, 13};
  Params p;
  p.error_bound = 1e-9;
  p.metric = ScalingMetric::AAR;
  p.tree = EcqTree::Tree2;
  const auto data = testutil::random_doubles(spec.block_size() * 3, -1, 1);
  const auto stream = compress(data, spec, p);
  const StreamInfo info = peek_info(stream);
  EXPECT_EQ(info.error_bound, 1e-9);
  EXPECT_EQ(info.metric, ScalingMetric::AAR);
  EXPECT_EQ(info.tree, EcqTree::Tree2);
  EXPECT_EQ(info.spec, spec);
  EXPECT_EQ(info.num_blocks, 3u);
}

TEST(Compressor, CorruptMagicThrows) {
  const BlockSpec spec{4, 4};
  Params p;
  auto stream = compress(testutil::random_doubles(16, -1, 1), spec, p);
  stream[0] ^= 0xFF;
  EXPECT_THROW(decompress(stream), std::runtime_error);
}

TEST(Compressor, TruncatedStreamThrows) {
  const BlockSpec spec{8, 8};
  Params p;
  auto stream =
      compress(testutil::random_doubles(64 * 4, -1, 1), spec, p);
  stream.resize(stream.size() / 2);
  EXPECT_THROW(decompress(stream), std::exception);
}

TEST(Compressor, StatsAccounting) {
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  Stats st;
  const auto stream = compress(ds.values, spec, p, &st);
  EXPECT_EQ(st.input_bytes, ds.size_bytes());
  EXPECT_EQ(st.output_bytes, stream.size());
  EXPECT_EQ(st.num_blocks, ds.num_blocks);
  EXPECT_EQ(st.blocks_by_type[0] + st.blocks_by_type[1] +
                st.blocks_by_type[2] + st.blocks_by_type[3],
            ds.num_blocks);
  // Bit accounting must explain the output within per-block padding
  // (one byte per block plus the global header).
  const std::size_t accounted =
      st.header_bits + st.pattern_bits + st.scale_bits + st.ecq_bits;
  EXPECT_LE(accounted, 8 * st.output_bytes);
  EXPECT_GE(accounted + 8 * st.num_blocks + 64, 8 * st.output_bytes);
  EXPECT_GT(st.ratio(), 1.0);
}

TEST(Compressor, StatsIdenticalBetweenBatchAndStreaming) {
  // compress() is a wrapper over the streaming writer, and a hand-driven
  // StreamWriter must account identically -- every counter, not just the
  // totals.
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  Stats batch;
  compress(ds.values, spec, p, &batch);

  VectorSink sink;
  StreamWriter w(sink, spec, p);
  const std::size_t bs = spec.block_size();
  for (std::size_t b = 0; b < ds.num_blocks; ++b) {
    w.put_block(std::span<const double>(ds.values).subspan(b * bs, bs));
  }
  w.finish();
  const Stats& st = w.stats();
  EXPECT_EQ(st.num_blocks, batch.num_blocks);
  EXPECT_EQ(st.input_bytes, batch.input_bytes);
  EXPECT_EQ(st.output_bytes, batch.output_bytes);
  EXPECT_EQ(st.header_bits, batch.header_bits);
  EXPECT_EQ(st.pattern_bits, batch.pattern_bits);
  EXPECT_EQ(st.scale_bits, batch.scale_bits);
  EXPECT_EQ(st.ecq_bits, batch.ecq_bits);
  EXPECT_EQ(st.num_outliers, batch.num_outliers);
  EXPECT_EQ(st.sparse_blocks, batch.sparse_blocks);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(st.blocks_by_type[t], batch.blocks_by_type[t]) << t;
  }
}

TEST(Compressor, SparseRepresentationKicksInForIsolatedOutliers) {
  // A large block, nearly exact pattern, with a handful of big outliers:
  // the sparse ECQ representation must win and round-trip exactly.
  const BlockSpec spec{36, 36};
  auto data = testutil::exact_pattern_block(spec, 9);
  for (double& v : data) v *= 1e-6;
  data[100] += 3e-7;
  data[700] -= 5e-7;
  data[1200] += 1e-7;
  Params p;
  p.error_bound = 1e-10;
  const BlockAnalysis a = analyze_block(data, spec, p);
  EXPECT_TRUE(a.sparse_chosen);
  const auto back = decompress(compress(data, spec, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

TEST(Compressor, SparseDisabledStillRoundTrips) {
  const BlockSpec spec{36, 36};
  auto data = testutil::exact_pattern_block(spec, 9);
  for (double& v : data) v *= 1e-6;
  data[100] += 3e-7;
  Params p;
  p.allow_sparse = false;
  const auto back = decompress(compress(data, spec, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

TEST(Compressor, DeterministicOutput) {
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  const auto s1 = compress(ds.values, spec, p);
  const auto s2 = compress(ds.values, spec, p);
  EXPECT_EQ(s1, s2);
}

TEST(Compressor, ThreadCountDoesNotChangeStream) {
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p1, p4;
  p1.num_threads = 1;
  p4.num_threads = 4;
  EXPECT_EQ(compress(ds.values, spec, p1), compress(ds.values, spec, p4));
}

TEST(Compressor, AnalyzeBlockTypeCensus) {
  const BlockSpec spec{6, 6};
  Params p;
  p.error_bound = 1e-10;
  // Type 0: all below bound.
  const std::vector<double> zeros(36, 1e-12);
  EXPECT_TRUE(analyze_block(zeros, spec, p).zero_block);
  // A noisy pattern produces nonzero ECQ and a consistent type.
  const auto noisy = testutil::noisy_pattern_block(spec, 1e-4, 4);
  const BlockAnalysis a = analyze_block(noisy, spec, p);
  EXPECT_FALSE(a.zero_block);
  EXPECT_GE(block_type(a.quantized.ecb_max), 2);
}

/// Sweep over the block geometries of every BF configuration the paper
/// touches -- (ss|ss) through (gg|gg) plus hybrids and degenerate shapes.
class CompressorShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(CompressorShapeSweep, RoundTripWithinBound) {
  const auto [nsb, sbs] = GetParam();
  const BlockSpec spec{nsb, sbs};
  Params p;
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 6; ++b) {
    auto block = testutil::noisy_pattern_block(spec, 1e-8, b + nsb);
    for (double& v : block) v *= 1e-6;
    data.insert(data.end(), block.begin(), block.end());
  }
  const auto back = decompress(compress(data, spec, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    PaperShapes, CompressorShapeSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},   // ssss
                      std::pair<std::size_t, std::size_t>{9, 9},   // pppp
                      std::pair<std::size_t, std::size_t>{36, 36},   // dddd
                      std::pair<std::size_t, std::size_t>{100, 100}, // ffff
                      std::pair<std::size_t, std::size_t>{60, 100},  // fdff
                      std::pair<std::size_t, std::size_t>{225, 225}, // gggg
                      std::pair<std::size_t, std::size_t>{3, 500},
                      std::pair<std::size_t, std::size_t>{500, 3}),
    [](const auto& info) {
      return std::to_string(info.param.first) + "x" +
             std::to_string(info.param.second);
    });

TEST(CompressorRelative, PerBlockBoundHolds) {
  // BlockRelative mode: each block's error must stay below
  // rel * max|block|, even when block magnitudes span many decades.
  const BlockSpec spec{10, 12};
  Params p;
  p.bound_mode = BoundMode::BlockRelative;
  p.error_bound = 1e-6;
  std::vector<double> data;
  std::vector<double> block_max;
  for (std::uint64_t b = 0; b < 16; ++b) {
    auto block = testutil::noisy_pattern_block(spec, 1e-4, b);
    const double scale = std::pow(10.0, -static_cast<double>(b));
    double mx = 0;
    for (double& v : block) {
      v *= scale;
      mx = std::max(mx, std::abs(v));
    }
    block_max.push_back(mx);
    data.insert(data.end(), block.begin(), block.end());
  }
  const auto stream = compress(data, spec, p);
  const auto back = decompress(stream);
  for (std::size_t b = 0; b < 16; ++b) {
    double err = 0;
    for (std::size_t i = 0; i < spec.block_size(); ++i) {
      err = std::max(err, std::abs(back[b * spec.block_size() + i] -
                                   data[b * spec.block_size() + i]));
    }
    EXPECT_LE(err, p.error_bound * block_max[b] * (1 + 1e-12))
        << "block " << b;
  }
}

TEST(CompressorRelative, PreservesTinyBlocksAbsoluteWouldZero) {
  // A block of magnitude 1e-14 is zeroed under EB=1e-10 absolute but
  // kept to 6 digits under 1e-6 relative.
  const BlockSpec spec{6, 6};
  auto data = testutil::exact_pattern_block(spec, 3);
  for (double& v : data) v *= 1e-14;

  Params abs;
  abs.error_bound = 1e-10;
  const auto back_abs = decompress(compress(data, spec, abs));
  for (double v : back_abs) EXPECT_EQ(v, 0.0);

  Params rel;
  rel.bound_mode = BoundMode::BlockRelative;
  rel.error_bound = 1e-6;
  const auto back_rel = decompress(compress(data, spec, rel));
  double mx = 0;
  for (double v : data) mx = std::max(mx, std::abs(v));
  EXPECT_LE(max_abs_diff(data, back_rel), 1e-6 * mx * (1 + 1e-12));
  bool any_nonzero = false;
  for (double v : back_rel) any_nonzero |= (v != 0.0);
  EXPECT_TRUE(any_nonzero);
}

TEST(CompressorRelative, ExactZeroBlocksStillCheap) {
  const BlockSpec spec{6, 6};
  std::vector<double> data(36 * 10, 0.0);
  Params p;
  p.bound_mode = BoundMode::BlockRelative;
  p.error_bound = 1e-8;
  Stats st;
  const auto stream = compress(data, spec, p, &st);
  EXPECT_EQ(st.blocks_by_type[0], 10u);
  const auto back = decompress(stream);
  for (double v : back) EXPECT_EQ(v, 0.0);
}

TEST(CompressorRelative, HeaderRoundTrip) {
  const BlockSpec spec{4, 4};
  Params p;
  p.bound_mode = BoundMode::BlockRelative;
  p.error_bound = 1e-7;
  const auto stream =
      compress(testutil::random_doubles(32, -1, 1), spec, p);
  const StreamInfo info = peek_info(stream);
  EXPECT_EQ(info.bound_mode, BoundMode::BlockRelative);
  EXPECT_EQ(info.error_bound, 1e-7);
}

TEST(CompressorRelative, RejectsFactorAboveOne) {
  const BlockSpec spec{4, 4};
  Params p;
  p.bound_mode = BoundMode::BlockRelative;
  p.error_bound = 2.0;
  EXPECT_THROW(compress(std::vector<double>(16, 1.0), spec, p),
               std::invalid_argument);
}

TEST(CompressorRelative, EriDataRelativeRoundTrip) {
  const auto& ds = testutil::small_eri_dataset();
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params p;
  p.bound_mode = BoundMode::BlockRelative;
  p.error_bound = 1e-8;
  const auto back = decompress(compress(ds.values, spec, p));
  for (std::size_t b = 0; b < ds.num_blocks; ++b) {
    const auto orig = ds.block(b);
    double mx = 0, err = 0;
    for (std::size_t i = 0; i < orig.size(); ++i) {
      mx = std::max(mx, std::abs(orig[i]));
      err = std::max(err,
                     std::abs(orig[i] - back[b * orig.size() + i]));
    }
    EXPECT_LE(err, 1e-8 * mx * (1 + 1e-12)) << "block " << b;
  }
}

TEST(Compressor, ExtremeBoundsStillRoundTrip) {
  // Very tight bound on O(1) values forces ~50-bit ECQ codes; very loose
  // bound zeroes everything.  Both extremes must stay correct.
  const BlockSpec spec{8, 8};
  const auto data = testutil::random_doubles(64 * 4, -1.0, 1.0, 77);
  {
    Params tight;
    tight.error_bound = 1e-15;
    const auto back = decompress(compress(data, spec, tight));
    EXPECT_LE(max_abs_diff(data, back), 1e-15 * (1 + 1e-9));
  }
  {
    Params loose;
    loose.error_bound = 10.0;
    Stats st;
    const auto stream = compress(data, spec, loose, &st);
    EXPECT_EQ(st.blocks_by_type[0], 4u);  // everything below the bound
    for (double v : decompress(stream)) EXPECT_EQ(v, 0.0);
  }
}

TEST(Compressor, MixedMagnitudeBlocksIndependent) {
  // Blocks spanning 12 decades in one stream: each block's P_b adapts
  // independently, and the bound holds globally.
  const BlockSpec spec{6, 6};
  std::vector<double> data;
  for (int e = 0; e < 12; ++e) {
    auto block = testutil::noisy_pattern_block(spec, 1e-9,
                                               static_cast<uint64_t>(e));
    for (double& v : block) v *= std::pow(10.0, -e);
    data.insert(data.end(), block.begin(), block.end());
  }
  Params p;
  const auto back = decompress(compress(data, spec, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

TEST(Compressor, NonFiniteInputRejectedGracefully) {
  // Infinities cannot be represented within a finite bound; the codec
  // must not emit a stream that silently violates it.  (Current policy:
  // saturating quantization clamps, so we only require no crash and a
  // finite reconstruction.)
  const BlockSpec spec{2, 2};
  std::vector<double> data{1.0, std::numeric_limits<double>::infinity(),
                           -1.0, 0.0};
  Params p;
  std::vector<double> back;
  EXPECT_NO_THROW(back = decompress(compress(data, spec, p)));
  ASSERT_EQ(back.size(), 4u);
  for (double v : back) EXPECT_TRUE(std::isfinite(v));
}

TEST(Compressor, PatternHeavyDataBeatsGenericEntropyBound) {
  // The headline property: on pattern-structured data PaSTRI's ratio
  // far exceeds what the 64-bit representation alone would allow.
  const BlockSpec spec{36, 36};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 64; ++b) {
    auto block = testutil::noisy_pattern_block(spec, 1e-11, b);
    for (double& v : block) v *= 1e-7;
    data.insert(data.end(), block.begin(), block.end());
  }
  Params p;
  p.error_bound = 1e-10;
  Stats st;
  compress(data, spec, p, &st);
  EXPECT_GT(st.ratio(), 25.0);
}

TEST(Compressor, ParamsValidateEdgeCases) {
  Params p;
  EXPECT_NO_THROW(p.validate());  // paper defaults are valid
  p.error_bound = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.error_bound = -1e-10;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.error_bound = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(p.validate(), std::invalid_argument);

  // Relative mode: the factor must lie strictly inside (0, 1).
  p.bound_mode = BoundMode::BlockRelative;
  p.error_bound = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.error_bound = 2.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.error_bound = 0.5;
  EXPECT_NO_THROW(p.validate());
  p.error_bound = std::nextafter(1.0, 0.0);
  EXPECT_NO_THROW(p.validate());
  // The same factor in Absolute mode stays legal (bounds above 1 only
  // make sense as absolute bounds).
  p.bound_mode = BoundMode::Absolute;
  p.error_bound = 2.0;
  EXPECT_NO_THROW(p.validate());
}

TEST(Compressor, StreamInfoToParamsRoundTrip) {
  const BlockSpec spec{5, 7};
  Params p;
  p.error_bound = 0.25;
  p.bound_mode = BoundMode::BlockRelative;
  p.metric = ScalingMetric::AR;
  p.tree = EcqTree::Tree3;
  const auto data = testutil::random_doubles(spec.block_size() * 2, -1, 1);
  const auto stream = compress(data, spec, p);
  const Params q = peek_info(stream).to_params();
  EXPECT_EQ(q.error_bound, p.error_bound);
  EXPECT_EQ(q.bound_mode, p.bound_mode);
  EXPECT_EQ(q.metric, p.metric);
  EXPECT_EQ(q.tree, p.tree);
  // Decode-side params pass validation and drive a correct decode.
  EXPECT_NO_THROW(q.validate());
  EXPECT_NO_THROW(decompress(stream));
}

TEST(Compressor, InfoFirstDecodeFamilyMatchesAliases) {
  // The StreamInfo-first entry points are the canonical path; the
  // info-less overloads are thin aliases.  Both must agree exactly.
  const BlockSpec spec{6, 9};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 7; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-6, b);
    data.insert(data.end(), block.begin(), block.end());
  }
  const auto stream = compress(data, spec, Params{});
  const StreamInfo info = peek_info(stream);

  EXPECT_EQ(decompress(stream, info), decompress(stream));
  EXPECT_EQ(decompress_block_at(stream, info, 3),
            decompress_block_at(stream, 3));
  EXPECT_EQ(decompress_range(stream, info, 2, 4),
            decompress_range(stream, 2, 4));

  // BlockReader's info-first ctor probes nothing it was already given.
  const BlockReader reader(stream, info);
  EXPECT_EQ(reader.info().num_blocks, info.num_blocks);
  EXPECT_EQ(reader.read_range(0, reader.num_blocks()), decompress(stream));
}

}  // namespace
}  // namespace pastri
