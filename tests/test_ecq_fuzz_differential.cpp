// Differential fuzz: the table-driven ECQ fast path (ecq_encode_fast /
// ecq_decode_fast) against the reference bit-by-bit tree walks
// (ecq_encode / ecq_decode), over every tree, the full EC_b,max range,
// and random symbol sequences starting at odd bit offsets.  The fast
// path exists only as an optimization, so any divergence -- in emitted
// bits, decoded values, or cursor position -- is a bug by definition.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "core/ecq_tree.h"
#include "core/quantize.h"

namespace pastri {
namespace {

constexpr EcqTree kAllTrees[] = {EcqTree::Tree1, EcqTree::Tree2,
                                 EcqTree::Tree3, EcqTree::Tree4,
                                 EcqTree::Tree5};

/// A random ECQ sequence valid for `ecb_max`: every value's bin fits,
/// i.e. |v| <= 2^(ecb_max-1) - 1 (for ecb_max = 2 that is exactly the
/// {0, +1, -1} alphabet Tree 5's small mode requires).  Mostly zeros and
/// +-1 like real residuals, with a tail of larger escapes.
std::vector<std::int64_t> random_sequence(std::mt19937_64& gen,
                                          unsigned ecb_max,
                                          std::size_t count) {
  const std::int64_t max_mag =
      ecb_max >= 63 ? (std::int64_t{1} << 62)
                    : (std::int64_t{1} << (ecb_max - 1)) - 1;
  std::vector<std::int64_t> seq(count);
  for (auto& v : seq) {
    const std::uint64_t roll = gen() % 100;
    if (roll < 55) {
      v = 0;
    } else if (roll < 80) {
      v = (gen() & 1) ? 1 : -1;
    } else {
      const std::int64_t mag =
          static_cast<std::int64_t>(gen() % (max_mag + 1));
      v = (gen() & 1) ? mag : -mag;
    }
  }
  return seq;
}

TEST(EcqDiffFuzz, FastEncodeBitIdenticalToReference) {
  std::mt19937_64 gen(2024);
  for (EcqTree tree : kAllTrees) {
    for (unsigned ecb_max = 2; ecb_max <= 52; ++ecb_max) {
      const auto seq = random_sequence(gen, ecb_max, 200);
      // Odd starting offset: the packers must be correct at any phase.
      const unsigned offset = 1 + static_cast<unsigned>(gen() % 7);
      bitio::BitWriter ref, fast;
      ref.write_bits(0, offset);
      fast.write_bits(0, offset);
      for (std::int64_t v : seq) ecq_encode(ref, tree, v, ecb_max);
      for (std::int64_t v : seq) ecq_encode_fast(fast, tree, v, ecb_max);
      ASSERT_EQ(ref.bit_count(), fast.bit_count())
          << ecq_tree_name(tree) << " ecb_max=" << ecb_max;
      ASSERT_EQ(ref.take(), fast.take())
          << ecq_tree_name(tree) << " ecb_max=" << ecb_max;
    }
  }
}

TEST(EcqDiffFuzz, FastDecodeMatchesReferenceValuesAndCursor) {
  std::mt19937_64 gen(4096);
  for (EcqTree tree : kAllTrees) {
    for (unsigned ecb_max = 2; ecb_max <= 52; ++ecb_max) {
      const auto seq = random_sequence(gen, ecb_max, 200);
      const unsigned offset = 1 + static_cast<unsigned>(gen() % 7);
      bitio::BitWriter w;
      w.write_bits(0, offset);
      for (std::int64_t v : seq) ecq_encode(w, tree, v, ecb_max);
      const auto bytes = w.take();

      bitio::BitReader ref(bytes);
      bitio::BitReader fast(bytes);
      ref.skip_bits(offset);
      fast.skip_bits(offset);
      const EcqDecodeLut& lut = ecq_decode_lut(tree, ecb_max);
      for (std::size_t i = 0; i < seq.size(); ++i) {
        const std::int64_t want = ecq_decode(ref, tree, ecb_max);
        const std::int64_t got = ecq_decode_fast(fast, lut, tree, ecb_max);
        ASSERT_EQ(got, want)
            << ecq_tree_name(tree) << " ecb_max=" << ecb_max << " i=" << i;
        ASSERT_EQ(fast.bit_position(), ref.bit_position())
            << ecq_tree_name(tree) << " ecb_max=" << ecb_max << " i=" << i;
        ASSERT_EQ(want, seq[i]);
      }
      fast.check_overrun();
    }
  }
}

TEST(EcqDiffFuzz, CrossDecodeFastStreamWithReferenceDecoder) {
  // The two encoders must be interchangeable with the two decoders in
  // every pairing, not just fast-with-fast and ref-with-ref.
  std::mt19937_64 gen(777);
  for (EcqTree tree : kAllTrees) {
    for (unsigned ecb_max : {2u, 3u, 6u, 11u, 27u, 52u}) {
      const auto seq = random_sequence(gen, ecb_max, 300);
      bitio::BitWriter w;
      w.write_bit(true);  // odd offset
      for (std::int64_t v : seq) ecq_encode_fast(w, tree, v, ecb_max);
      const auto bytes = w.take();
      bitio::BitReader r(bytes);
      EXPECT_TRUE(r.read_bit());
      for (std::size_t i = 0; i < seq.size(); ++i) {
        ASSERT_EQ(ecq_decode(r, tree, ecb_max), seq[i])
            << ecq_tree_name(tree) << " ecb_max=" << ecb_max << " i=" << i;
      }
    }
  }
}

TEST(EcqDiffFuzz, RunDecoderMatchesPerSymbolDecodeAndCursor) {
  // The windowed whole-block decoder must land on the same values and
  // the same final cursor as symbol-at-a-time decoding, for every tree,
  // the full ecb_max range, odd offsets, and with trailing bits after
  // the run (so the window cannot over-consume).
  std::mt19937_64 gen(90210);
  for (EcqTree tree : kAllTrees) {
    for (unsigned ecb_max : {2u, 3u, 5u, 9u, 17u, 33u, 52u}) {
      const auto seq = random_sequence(gen, ecb_max, 300);
      const unsigned offset = 1 + static_cast<unsigned>(gen() % 7);
      bitio::BitWriter w;
      w.write_bits(0, offset);
      for (std::int64_t v : seq) ecq_encode(w, tree, v, ecb_max);
      w.write_bits(0x15, 5);  // trailing bits the run must not consume
      const auto bytes = w.take();

      const EcqDecodeLut& lut = ecq_decode_lut(tree, ecb_max);
      bitio::BitReader ref(bytes);
      bitio::BitReader run(bytes);
      ref.skip_bits(offset);
      run.skip_bits(offset);
      std::vector<std::int64_t> want(seq.size()), got(seq.size());
      for (auto& v : want) v = ecq_decode(ref, tree, ecb_max);
      ecq_decode_run(run, lut, tree, ecb_max, got);
      run.check_overrun();
      ASSERT_EQ(got, want) << ecq_tree_name(tree) << " ecb_max=" << ecb_max;
      ASSERT_EQ(run.bit_position(), ref.bit_position())
          << ecq_tree_name(tree) << " ecb_max=" << ecb_max;
      ASSERT_EQ(want, seq);
    }
  }
}

TEST(EcqDiffFuzz, RunDecoderThrowsOnTruncatedPayload) {
  // Chopping the stream mid-run must surface as check_overrun throwing,
  // never UB: the window path stops at the last 8 bytes and the reader's
  // speculative tail path zero-pads then overruns.
  std::mt19937_64 gen(5150);
  const unsigned ecb_max = 9;
  const auto seq = random_sequence(gen, ecb_max, 200);
  bitio::BitWriter w;
  for (std::int64_t v : seq) ecq_encode(w, EcqTree::Tree5, v, ecb_max);
  auto bytes = w.take();
  bytes.resize(bytes.size() / 2);

  const EcqDecodeLut& lut = ecq_decode_lut(EcqTree::Tree5, ecb_max);
  bitio::BitReader r(bytes);
  std::vector<std::int64_t> out(seq.size());
  ecq_decode_run(r, lut, EcqTree::Tree5, ecb_max, out);
  EXPECT_TRUE(r.overrun());
  EXPECT_THROW(r.check_overrun(), std::out_of_range);
}

TEST(EcqDiffFuzz, Tree4DeepBinsFallBackCorrectly) {
  // Bins deeper than the 11-bit table (|v| >= 32 for Tree 4) must hit
  // the slow-path miss entry and still decode exactly.
  std::mt19937_64 gen(31337);
  const unsigned ecb_max = 40;
  std::vector<std::int64_t> seq;
  for (int i = 0; i < 200; ++i) {
    // Magnitudes spanning every bin from the table edge upward.
    const unsigned bin = 6 + static_cast<unsigned>(gen() % 34);
    const std::int64_t lo = std::int64_t{1} << (bin - 2);
    const std::int64_t hi = (std::int64_t{1} << (bin - 1)) - 1;
    const std::int64_t mag =
        lo + static_cast<std::int64_t>(gen() % (hi - lo + 1));
    seq.push_back((gen() & 1) ? mag : -mag);
    EXPECT_EQ(ecq_bin(seq.back()), bin);
  }
  bitio::BitWriter ref, fast;
  for (std::int64_t v : seq) ecq_encode(ref, EcqTree::Tree4, v, ecb_max);
  for (std::int64_t v : seq) {
    ecq_encode_fast(fast, EcqTree::Tree4, v, ecb_max);
  }
  const auto bytes = ref.take();
  ASSERT_EQ(fast.take(), bytes);

  bitio::BitReader r(bytes);
  const EcqDecodeLut& lut = ecq_decode_lut(EcqTree::Tree4, ecb_max);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(ecq_decode_fast(r, lut, EcqTree::Tree4, ecb_max), seq[i])
        << i;
  }
  r.check_overrun();
}

}  // namespace
}  // namespace pastri
