// Tests for the ZFP-style baseline: transform invertibility, negabinary
// mapping, and end-to-end accuracy-mode guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "compressors/zfp/zfp.h"
#include "test_util.h"

namespace pastri::baselines {
namespace {

using pastri::testutil::max_abs_diff;
using namespace zfp_detail;

TEST(ZfpLift, NearInverseOfForward) {
  // ZFP's lifting steps round away low-order bits (the >>1 stages), so
  // inv(fwd(x)) is not bit-exact; the round-trip error is bounded by a
  // few units in the last place of the fixed-point representation --
  // that is what the transform's 2 guard bits absorb.
  std::mt19937_64 gen(11);
  std::int64_t max_err = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::int64_t p[4], q[4];
    for (int i = 0; i < 4; ++i) {
      // Stay within the fixed-point range ZFP uses (2 guard bits).
      p[i] = static_cast<std::int64_t>(gen() >> 3);
      if (gen() & 1) p[i] = -p[i];
      q[i] = p[i];
    }
    fwd_lift(q);
    inv_lift(q);
    for (int i = 0; i < 4; ++i) {
      max_err = std::max(max_err, std::abs(q[i] - p[i]));
    }
  }
  EXPECT_LE(max_err, 8);
}

TEST(ZfpLift, SmallValuesRoundTripTightly) {
  std::mt19937_64 gen(12);
  for (int trial = 0; trial < 500; ++trial) {
    std::int64_t p[4], q[4];
    for (int i = 0; i < 4; ++i) {
      p[i] = static_cast<std::int64_t>(gen() % (1 << 20)) - (1 << 19);
      q[i] = p[i];
    }
    fwd_lift(q);
    inv_lift(q);
    for (int i = 0; i < 4; ++i) {
      EXPECT_LE(std::abs(q[i] - p[i]), 8) << "trial " << trial;
    }
  }
}

TEST(ZfpLift, DecorrelatesConstantBlock) {
  // A constant block must transform to a single DC coefficient.
  std::int64_t q[4] = {1 << 20, 1 << 20, 1 << 20, 1 << 20};
  fwd_lift(q);
  EXPECT_EQ(q[0], 1 << 20);
  EXPECT_EQ(q[1], 0);
  EXPECT_EQ(q[2], 0);
  EXPECT_EQ(q[3], 0);
}

TEST(ZfpNegabinary, RoundTrip) {
  std::mt19937_64 gen(13);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto v = static_cast<std::int64_t>(gen());
    EXPECT_EQ(negabinary_to_int(int_to_negabinary(v)), v);
  }
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1},
                         std::int64_t{-1}, INT64_MAX / 4, -(INT64_MAX / 4)}) {
    EXPECT_EQ(negabinary_to_int(int_to_negabinary(v)), v);
  }
}

TEST(ZfpNegabinary, SmallMagnitudesHaveFewHighBits) {
  // Negabinary keeps small signed values in the low-order bits, the
  // property the bit-plane coder relies on.
  EXPECT_EQ(int_to_negabinary(0), 0u);
  EXPECT_LT(int_to_negabinary(1), 16u);
  EXPECT_LT(int_to_negabinary(-1), 16u);
  EXPECT_LT(int_to_negabinary(5), 64u);
}

class ZfpEbSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZfpEbSweep, SmoothSignalWithinTolerance) {
  const double tol = GetParam();
  std::vector<double> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::cos(i * 0.002) * 1e-3;
  }
  ZfpParams p;
  p.tolerance = tol;
  const auto back = zfp_decompress(zfp_compress(data, p));
  ASSERT_EQ(back.size(), data.size());
  EXPECT_LE(max_abs_diff(data, back), tol);
}

INSTANTIATE_TEST_SUITE_P(TolRange, ZfpEbSweep,
                         ::testing::Values(1e-4, 1e-8, 1e-10, 1e-12));

TEST(Zfp, RandomDataWithinTolerance) {
  const auto data = pastri::testutil::random_doubles(10000, -2.0, 2.0, 5);
  ZfpParams p;
  p.tolerance = 1e-9;
  const auto back = zfp_decompress(zfp_compress(data, p));
  EXPECT_LE(max_abs_diff(data, back), p.tolerance);
}

TEST(Zfp, RealEriDataWithinTolerance) {
  const auto& ds = pastri::testutil::small_eri_dataset();
  ZfpParams p;
  p.tolerance = 1e-10;
  const auto back = zfp_decompress(zfp_compress(ds.values, p));
  EXPECT_LE(max_abs_diff(ds.values, back), p.tolerance);
}

TEST(Zfp, MixedMagnitudeBlocksWithinTolerance) {
  // Exercises per-block exponents across a huge dynamic range.
  std::vector<double> data;
  std::mt19937_64 gen(17);
  std::uniform_real_distribution<double> mant(-1.0, 1.0);
  for (int e = -40; e <= 0; ++e) {
    for (int i = 0; i < 8; ++i) {
      data.push_back(mant(gen) * std::ldexp(1.0, e));
    }
  }
  ZfpParams p;
  p.tolerance = 1e-10;
  const auto back = zfp_decompress(zfp_compress(data, p));
  EXPECT_LE(max_abs_diff(data, back), p.tolerance);
}

TEST(Zfp, TinyBlocksVanish) {
  // Blocks entirely below tolerance should cost ~1 bit and decode to 0.
  const std::vector<double> data(4096, 1e-14);
  ZfpParams p;
  p.tolerance = 1e-10;
  const auto stream = zfp_compress(data, p);
  EXPECT_LT(stream.size(), 200u);
  const auto back = zfp_decompress(stream);
  for (double v : back) EXPECT_EQ(v, 0.0);
}

TEST(Zfp, PartialTailBlock) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 6u, 7u}) {
    const auto data = pastri::testutil::random_doubles(n, -1.0, 1.0, n);
    ZfpParams p;
    p.tolerance = 1e-11;
    const auto back = zfp_decompress(zfp_compress(data, p));
    ASSERT_EQ(back.size(), n);
    EXPECT_LE(max_abs_diff(data, back), p.tolerance) << "n=" << n;
  }
}

TEST(Zfp, EmptyInput) {
  ZfpParams p;
  const auto back = zfp_decompress(zfp_compress({}, p));
  EXPECT_TRUE(back.empty());
}

TEST(Zfp, RejectsBadTolerance) {
  ZfpParams p;
  p.tolerance = 0.0;
  EXPECT_THROW(zfp_compress({}, p), std::invalid_argument);
}

TEST(Zfp, CorruptMagicThrows) {
  ZfpParams p;
  auto stream = zfp_compress(std::vector<double>(8, 1.0), p);
  stream[0] ^= 0x1;
  EXPECT_THROW(zfp_decompress(stream), std::runtime_error);
}

TEST(Zfp, CoarserToleranceCompressesBetter) {
  const auto& ds = pastri::testutil::small_eri_dataset();
  ZfpParams fine, coarse;
  fine.tolerance = 1e-12;
  coarse.tolerance = 1e-8;
  EXPECT_LT(zfp_compress(ds.values, coarse).size(),
            zfp_compress(ds.values, fine).size());
}

}  // namespace
}  // namespace pastri::baselines
