// Tests for the lossless LZSS baseline.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "compressors/lossless/lzss.h"
#include "test_util.h"

namespace pastri::baselines {
namespace {

std::vector<std::uint8_t> to_bytes(const std::vector<double>& v) {
  std::vector<std::uint8_t> b(v.size() * sizeof(double));
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

TEST(Lzss, RoundTripEmpty) {
  const auto back = lzss_decompress(lzss_compress({}));
  EXPECT_TRUE(back.empty());
}

TEST(Lzss, RoundTripShort) {
  const std::vector<std::uint8_t> data{1, 2, 3};
  EXPECT_EQ(lzss_decompress(lzss_compress(data)), data);
}

TEST(Lzss, RoundTripRepetitive) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 5000; ++i) data.push_back("ABCD"[i % 4]);
  const auto stream = lzss_compress(data);
  EXPECT_LT(stream.size(), data.size() / 4);  // highly compressible
  EXPECT_EQ(lzss_decompress(stream), data);
}

TEST(Lzss, RoundTripRandom) {
  std::mt19937_64 gen(23);
  std::vector<std::uint8_t> data(65536);
  for (auto& b : data) b = static_cast<std::uint8_t>(gen());
  const auto stream = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(stream), data);
  // Random bytes must not compress (flag overhead ~12.5% max).
  EXPECT_GT(stream.size(), data.size());
}

TEST(Lzss, RoundTripOverlappingMatches) {
  // aaaaa... triggers overlapping copy semantics.
  std::vector<std::uint8_t> data(1000, 'a');
  EXPECT_EQ(lzss_decompress(lzss_compress(data)), data);
}

TEST(Lzss, RoundTripEriDoubles) {
  const auto& ds = pastri::testutil::small_eri_dataset();
  std::vector<double> vals(ds.values.begin(),
                           ds.values.begin() +
                               std::min<std::size_t>(ds.values.size(),
                                                     100000));
  const auto data = to_bytes(vals);
  const auto stream = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(stream), data);
}

TEST(Lzss, EriRatioIsModest) {
  // The paper's motivation: lossless compressors manage only small
  // ratios on floating-point scientific data.  Zero blocks give LZ some
  // traction, but nonzero ERI mantissas stay near-incompressible; check
  // on the nonzero-heavy benzene data that the ratio is far below what
  // PaSTRI reaches at 1e-10.
  const auto& ds = pastri::testutil::small_eri_dataset();
  const auto data = to_bytes(ds.values);
  const auto stream = lzss_compress(data);
  const double ratio =
      static_cast<double>(data.size()) / static_cast<double>(stream.size());
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 6.0);
}

TEST(Lzss, WindowBoundary) {
  // Matches must never reference farther back than the 32 KiB window.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 200; ++i) data.push_back(static_cast<uint8_t>(i));
  data.insert(data.end(), 40000, 0xEE);  // push the prefix out of window
  for (int i = 0; i < 200; ++i) data.push_back(static_cast<uint8_t>(i));
  EXPECT_EQ(lzss_decompress(lzss_compress(data)), data);
}

TEST(Lzss, CorruptMagicThrows) {
  auto stream = lzss_compress(std::vector<std::uint8_t>(100, 7));
  stream[2] ^= 0xFF;
  EXPECT_THROW(lzss_decompress(stream), std::runtime_error);
}

TEST(Lzss, TruncatedStreamThrows) {
  auto stream = lzss_compress(std::vector<std::uint8_t>(10000, 'x'));
  stream.resize(stream.size() - 4);
  EXPECT_THROW(lzss_decompress(stream), std::exception);
}

}  // namespace
}  // namespace pastri::baselines
