// Unit tests for the bit-granular I/O layer every codec builds on.
#include <gtest/gtest.h>

#include <random>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "bitio/varint.h"

namespace pastri::bitio {
namespace {

TEST(BitWriter, EmptyStreamIsEmpty) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.take().empty());
}

TEST(BitWriter, SingleBitsPackLsbFirst) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  w.write_bit(true);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b00001101);  // first bit in bit 0
}

TEST(BitWriter, BitCountTracksExactly) {
  BitWriter w;
  w.write_bits(0x3, 2);
  EXPECT_EQ(w.bit_count(), 2u);
  w.write_bits(0x12345, 20);
  EXPECT_EQ(w.bit_count(), 22u);
  w.write_bits(0xFFFFFFFFFFFFFFFFull, 64);
  EXPECT_EQ(w.bit_count(), 86u);
}

TEST(BitWriter, TakePadsToByte) {
  BitWriter w;
  w.write_bits(0x5, 3);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x5);
}

TEST(BitWriter, ZeroWidthWriteIsNoop) {
  BitWriter w;
  w.write_bits(0xFFF, 0);
  EXPECT_EQ(w.bit_count(), 0u);
}

TEST(BitWriter, MasksValueToWidth) {
  BitWriter w;
  w.write_bits(0xFF, 4);  // only low 4 bits should land
  w.write_bits(0x0, 4);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x0F);
}

TEST(BitRoundTrip, FixedWidthValues) {
  BitWriter w;
  w.write_bits(0xDEADBEEF, 32);
  w.write_bits(0x1, 1);
  w.write_bits(0x7F, 7);
  w.write_bits(0xABCDEF0123456789ull, 64);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(32), 0xDEADBEEFu);
  EXPECT_EQ(r.read_bits(1), 0x1u);
  EXPECT_EQ(r.read_bits(7), 0x7Fu);
  EXPECT_EQ(r.read_bits(64), 0xABCDEF0123456789ull);
}

TEST(BitRoundTrip, SignedValues) {
  BitWriter w;
  w.write_signed(-1, 2);
  w.write_signed(1, 2);
  w.write_signed(-512, 10);
  w.write_signed(511, 10);
  w.write_signed(-123456789, 32);
  w.write_signed(INT64_MIN, 64);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_signed(2), -1);
  EXPECT_EQ(r.read_signed(2), 1);
  EXPECT_EQ(r.read_signed(10), -512);
  EXPECT_EQ(r.read_signed(10), 511);
  EXPECT_EQ(r.read_signed(32), -123456789);
  EXPECT_EQ(r.read_signed(64), INT64_MIN);
}

TEST(BitRoundTrip, Unary) {
  BitWriter w;
  for (unsigned v : {0u, 1u, 5u, 13u}) w.write_unary(v);
  const auto bytes = w.take();
  BitReader r(bytes);
  for (unsigned v : {0u, 1u, 5u, 13u}) EXPECT_EQ(r.read_unary(), v);
}

TEST(BitRoundTrip, RawDouble) {
  BitWriter w;
  w.write_bit(true);  // deliberately misalign
  w.write_raw(3.14159265358979);
  w.write_raw(-1e-300);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read_raw<double>(), 3.14159265358979);
  EXPECT_EQ(r.read_raw<double>(), -1e-300);
}

TEST(BitRoundTrip, WriteBytesAlignedAndUnaligned) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 255, 0, 42};
  {
    BitWriter w;
    w.write_bytes(payload);
    const auto bytes = w.take();
    EXPECT_EQ(bytes, payload);
  }
  {
    BitWriter w;
    w.write_bits(0x2, 3);
    w.align_to_byte();
    w.write_bytes(payload);
    const auto bytes = w.take();
    ASSERT_EQ(bytes.size(), 1 + payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           bytes.begin() + 1));
  }
}

TEST(BitRoundTrip, RandomizedMixedWidths) {
  std::mt19937_64 gen(1234);
  std::vector<std::pair<std::uint64_t, unsigned>> items;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const unsigned width = 1 + gen() % 64;
    std::uint64_t value = gen();
    if (width < 64) value &= (std::uint64_t{1} << width) - 1;
    items.emplace_back(value, width);
    w.write_bits(value, width);
  }
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const auto& [value, width] : items) {
    EXPECT_EQ(r.read_bits(width), value);
  }
}

TEST(BitRoundTrip, SignedRunMatchesPerElementWrites) {
  // write_signed_run / read_signed_run must be bit-identical to the
  // element-at-a-time loops they replaced, at any bit offset.
  std::mt19937_64 gen(99);
  for (unsigned nbits : {1u, 2u, 7u, 11u, 33u, 54u, 57u}) {
    std::vector<std::int64_t> values(64);
    for (auto& v : values) {
      const std::uint64_t raw = gen();
      std::int64_t s = static_cast<std::int64_t>(raw);
      if (nbits < 64) {
        const std::int64_t hi = (std::int64_t{1} << (nbits - 1)) - 1;
        const std::int64_t lo = -(std::int64_t{1} << (nbits - 1));
        s = lo + static_cast<std::int64_t>(raw % (hi - lo + 1));
      }
      v = s;
    }
    BitWriter ref, fast;
    ref.write_bits(0x5, 3);  // misalign both streams
    fast.write_bits(0x5, 3);
    for (std::int64_t v : values) ref.write_signed(v, nbits);
    fast.write_signed_run(values, nbits);
    const auto ref_bytes = ref.take();
    EXPECT_EQ(fast.take(), ref_bytes) << "nbits=" << nbits;

    BitReader r(ref_bytes);
    r.skip_bits(3);
    std::vector<std::int64_t> back(values.size());
    r.read_signed_run(nbits, back);
    EXPECT_EQ(back, values) << "nbits=" << nbits;
  }
}

TEST(BitReader, SignedRunThrowsOnTruncatedPayload) {
  BitWriter w;
  for (int i = 0; i < 4; ++i) w.write_signed(-3, 11);
  const auto bytes = w.take();
  BitReader r(bytes);
  std::vector<std::int64_t> out(5);  // one value more than was written
  EXPECT_THROW(r.read_signed_run(11, out), std::out_of_range);
}

TEST(BitReader, UnaryConventionMatchesWriter) {
  // Pin the wire convention: write_unary(v) emits v one-bits then a
  // terminating zero-bit, and read_unary returns v consuming all v+1
  // bits.  The word-scan fast path must preserve this exactly, including
  // runs longer than one peek window (> 57 ones).
  for (unsigned v : {0u, 1u, 7u, 56u, 57u, 58u, 130u}) {
    BitWriter w;
    w.write_bit(true);  // misalign
    w.write_unary(v);
    w.write_bits(0x2A, 7);  // sentinel proving the cursor lands right
    const auto bytes = w.take();
    BitReader r(bytes);
    EXPECT_TRUE(r.read_bit());
    EXPECT_EQ(r.read_unary(), v);
    EXPECT_EQ(r.read_bits(7), 0x2Au);
  }
}

TEST(BitReader, UnaryThrowsOnMissingTerminator) {
  const std::vector<std::uint8_t> ones(16, 0xFF);
  BitReader r(ones);
  EXPECT_THROW(r.read_unary(), std::out_of_range);
}

TEST(BitReader, PeekIsNonConsumingAndZeroPadsPastEnd) {
  BitWriter w;
  w.write_bits(0x1ABCD, 17);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.peek_bits(17), 0x1ABCDu);
  EXPECT_EQ(r.peek_bits(17), 0x1ABCDu);  // did not consume
  EXPECT_EQ(r.bit_position(), 0u);
  // Peeking past the 24-bit span returns zero bits, never throws.
  r.consume(17);
  EXPECT_EQ(r.peek_bits(BitReader::kMaxPeek), 0u);
  EXPECT_FALSE(r.overrun());
}

TEST(BitReader, TakeAndConsumeDeferBoundsToCheckOverrun) {
  BitWriter w;
  w.write_bits(0xBEEF, 16);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.take_bits(16), 0xBEEFu);
  EXPECT_NO_THROW(r.check_overrun());
  // Speculative reads past the end yield zero bits and set overrun; only
  // the hoisted check throws.
  EXPECT_EQ(r.take_bits(13), 0u);
  EXPECT_TRUE(r.overrun());
  EXPECT_THROW(r.check_overrun(), std::out_of_range);
}

TEST(BitReader, TakeBitsWideWidths) {
  BitWriter w;
  w.write_bit(true);  // odd offset
  w.write_bits(0xFEDCBA9876543210ull, 64);
  w.write_signed(-12345, 60);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.take_bits(64), 0xFEDCBA9876543210ull);
  EXPECT_EQ(r.take_signed(60), -12345);
  EXPECT_NO_THROW(r.check_overrun());
}

TEST(BitWriter, FinishViewAndRestartReuseBuffer) {
  BitWriter w;
  w.write_bits(0xAB, 8);
  const auto view = w.finish_view();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], 0xABu);
  w.restart();
  EXPECT_EQ(w.bit_count(), 0u);
  w.write_bits(0xCD, 8);
  const auto view2 = w.finish_view();
  ASSERT_EQ(view2.size(), 1u);
  EXPECT_EQ(view2[0], 0xCDu);
}

TEST(BitReader, ThrowsPastEnd) {
  const std::vector<std::uint8_t> one{0xAB};
  BitReader r(one);
  r.read_bits(8);
  EXPECT_THROW(r.read_bits(1), std::out_of_range);
}

TEST(BitReader, SkipBits) {
  BitWriter w;
  w.write_bits(0xAA, 8);
  w.write_bits(0x1234, 16);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.skip_bits(8);
  EXPECT_EQ(r.read_bits(16), 0x1234u);
  EXPECT_THROW(r.skip_bits(1), std::out_of_range);
}

TEST(BitReader, BitsRemaining) {
  const std::vector<std::uint8_t> data{0, 0, 0};
  BitReader r(data);
  EXPECT_EQ(r.bits_remaining(), 24u);
  r.read_bits(5);
  EXPECT_EQ(r.bits_remaining(), 19u);
  r.align_to_byte();
  EXPECT_EQ(r.bits_remaining(), 16u);
}

TEST(Zigzag, SmallMagnitudesStaySmall) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(Zigzag, RoundTripExtremes) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                         INT64_MAX, INT64_MIN, std::int64_t{123456789},
                         std::int64_t{-987654321}}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Varint, RoundTrip) {
  BitWriter w;
  const std::vector<std::uint64_t> vals{0, 1, 127, 128, 300, 1u << 20,
                                        UINT64_MAX};
  for (auto v : vals) write_varint(w, v);
  const std::vector<std::int64_t> svals{0, -1, 63, -64, 1 << 20,
                                        INT64_MIN, INT64_MAX};
  for (auto v : svals) write_svarint(w, v);
  const auto bytes = w.take();
  BitReader r(bytes);
  for (auto v : vals) EXPECT_EQ(read_varint(r), v);
  for (auto v : svals) EXPECT_EQ(read_svarint(r), v);
}

TEST(Varint, SingleByteForSmall) {
  BitWriter w;
  write_varint(w, 127);
  EXPECT_EQ(w.bit_count(), 8u);
}

TEST(Varint, WidthMatchesWrittenBytes) {
  // varint_width must agree exactly with what write_varint emits,
  // including multi-byte payload lengths (>= 16 KiB needs 3 bytes).
  const std::vector<std::uint64_t> vals{
      0, 1, 127, 128, 300, 16383, 16384, 1u << 20, (1u << 21) - 1,
      UINT64_MAX};
  for (auto v : vals) {
    BitWriter w;
    write_varint(w, v);
    EXPECT_EQ(8u * varint_width(v), w.bit_count()) << v;
  }
  static_assert(varint_width(0) == 1);
  static_assert(varint_width(127) == 1);
  static_assert(varint_width(128) == 2);
  static_assert(varint_width(16384) == 3);
  static_assert(varint_width(UINT64_MAX) == 10);
}

TEST(BitsForCount, Minimums) {
  EXPECT_EQ(bits_for_count(0), 1u);
  EXPECT_EQ(bits_for_count(1), 1u);
  EXPECT_EQ(bits_for_count(2), 1u);
  EXPECT_EQ(bits_for_count(3), 2u);
  EXPECT_EQ(bits_for_count(4), 2u);
  EXPECT_EQ(bits_for_count(5), 3u);
  EXPECT_EQ(bits_for_count(1296), 11u);  // (dd|dd) block size
  EXPECT_EQ(bits_for_count(10000), 14u);
}

}  // namespace
}  // namespace pastri::bitio
