// Tests for the SZ-style baseline compressor.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "compressors/sz/sz.h"
#include "test_util.h"

namespace pastri::baselines {
namespace {

using pastri::testutil::max_abs_diff;

class SzEbSweep : public ::testing::TestWithParam<double> {};

TEST_P(SzEbSweep, SmoothSignalWithinBound) {
  const double eb = GetParam();
  std::vector<double> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double t = static_cast<double>(i) * 0.001;
    data[i] = std::sin(2 * std::numbers::pi * t) * std::exp(-t * 0.1);
  }
  SzParams p;
  p.error_bound = eb;
  const auto stream = sz_compress(data, p);
  const auto back = sz_decompress(stream);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_LE(max_abs_diff(data, back), eb * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(EbRange, SzEbSweep,
                         ::testing::Values(1e-4, 1e-8, 1e-10, 1e-12));

TEST(Sz, RandomDataWithinBound) {
  const auto data = pastri::testutil::random_doubles(5000, -1.0, 1.0, 3);
  SzParams p;
  p.error_bound = 1e-9;
  const auto back = sz_decompress(sz_compress(data, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

TEST(Sz, RealEriDataWithinBound) {
  const auto& ds = pastri::testutil::small_eri_dataset();
  SzParams p;
  p.error_bound = 1e-10;
  const auto back = sz_decompress(sz_compress(ds.values, p));
  EXPECT_LE(max_abs_diff(ds.values, back), p.error_bound * (1 + 1e-12));
}

TEST(Sz, SmoothDataCompressesWell) {
  std::vector<double> data(50000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1e-6 * std::sin(i * 0.01);
  }
  SzParams p;
  p.error_bound = 1e-10;
  SzStats st;
  const auto stream = sz_compress(data, p, &st);
  EXPECT_GT(static_cast<double>(data.size() * 8) / stream.size(), 8.0);
  EXPECT_GT(st.quantized_points, st.unpredictable_points);
}

TEST(Sz, WildDataStillBounded) {
  // Huge dynamic range and sign flips force the unpredictable path.
  std::vector<double> data;
  for (int e = -300; e <= 300; e += 7) {
    data.push_back(std::ldexp(1.0, e));
    data.push_back(-std::ldexp(1.0, e));
  }
  data.push_back(0.0);
  SzParams p;
  p.error_bound = 1e-10;
  SzStats st;
  const auto back = sz_decompress(sz_compress(data, p, &st));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
  EXPECT_GT(st.unpredictable_points, 0u);
}

TEST(Sz, ZerosCompressTight) {
  const std::vector<double> data(100000, 0.0);
  SzParams p;
  const auto stream = sz_compress(data, p);
  // Huffman floors at 1 bit per point -> the ratio ceiling is ~64x.
  EXPECT_GT(static_cast<double>(data.size() * 8) / stream.size(), 40.0);
  const auto back = sz_decompress(stream);
  for (double v : back) EXPECT_EQ(v, 0.0);
}

TEST(Sz, EmptyInput) {
  SzParams p;
  const auto back = sz_decompress(sz_compress({}, p));
  EXPECT_TRUE(back.empty());
}

TEST(Sz, SingleValue) {
  const std::vector<double> data{0.123456789};
  SzParams p;
  p.error_bound = 1e-12;
  const auto back = sz_decompress(sz_compress(data, p));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_NEAR(back[0], data[0], 1e-12);
}

TEST(Sz, RejectsBadParams) {
  SzParams p;
  p.error_bound = 0.0;
  EXPECT_THROW(sz_compress({}, p), std::invalid_argument);
  p.error_bound = 1e-10;
  p.intervals = 1000;  // not a power of two
  EXPECT_THROW(sz_compress({}, p), std::invalid_argument);
  p.intervals = 2;
  EXPECT_THROW(sz_compress({}, p), std::invalid_argument);
}

TEST(Sz, CorruptMagicThrows) {
  SzParams p;
  auto stream = sz_compress(std::vector<double>(64, 1.0), p);
  stream[1] ^= 0x55;
  EXPECT_THROW(sz_decompress(stream), std::runtime_error);
}

TEST(Sz, StatsAddUp) {
  const auto data = pastri::testutil::random_doubles(4096, -1e-6, 1e-6, 8);
  SzParams p;
  p.error_bound = 1e-10;
  SzStats st;
  sz_compress(data, p, &st);
  EXPECT_EQ(st.quantized_points + st.unpredictable_points, data.size());
}

TEST(Sz, SmallerIntervalsStillBounded) {
  const auto data = pastri::testutil::random_doubles(2000, -1e-7, 1e-7, 4);
  SzParams p;
  p.error_bound = 1e-10;
  p.intervals = 256;
  const auto back = sz_decompress(sz_compress(data, p));
  EXPECT_LE(max_abs_diff(data, back), p.error_bound * (1 + 1e-12));
}

}  // namespace
}  // namespace pastri::baselines
