// Tests for the streaming (block-at-a-time) API and its interoperability
// with the one-shot compress/decompress functions.
#include <gtest/gtest.h>

#include "core/stream.h"
#include "test_util.h"

namespace pastri {
namespace {

using testutil::max_abs_diff;

TEST(Stream, InteropStreamingCompressOneShotDecompress) {
  const BlockSpec spec{9, 11};
  Params p;
  StreamCompressor sc(spec, p);
  std::vector<double> all;
  for (std::uint64_t b = 0; b < 20; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-6, b);
    sc.append_block(block);
    all.insert(all.end(), block.begin(), block.end());
  }
  EXPECT_EQ(sc.blocks_appended(), 20u);
  const auto stream = sc.finish();
  const auto back = decompress(stream);
  EXPECT_LE(max_abs_diff(all, back), p.error_bound * (1 + 1e-12));
}

TEST(Stream, InteropOneShotCompressStreamingDecompress) {
  const BlockSpec spec{6, 16};
  Params p;
  std::vector<double> all;
  for (std::uint64_t b = 0; b < 15; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-5, b + 100);
    all.insert(all.end(), block.begin(), block.end());
  }
  const auto stream = compress(all, spec, p);

  StreamDecompressor sd(stream);
  EXPECT_EQ(sd.info().num_blocks, 15u);
  EXPECT_EQ(sd.info().spec, spec);
  std::vector<double> block(spec.block_size());
  std::size_t b = 0;
  while (sd.next_block(block)) {
    EXPECT_LE(max_abs_diff(
                  std::span<const double>(all).subspan(
                      b * spec.block_size(), spec.block_size()),
                  block),
              p.error_bound * (1 + 1e-12))
        << "block " << b;
    ++b;
  }
  EXPECT_EQ(b, 15u);
  EXPECT_EQ(sd.blocks_remaining(), 0u);
  EXPECT_FALSE(sd.next_block(block));
}

TEST(Stream, IdenticalBytesToOneShot) {
  const BlockSpec spec{8, 8};
  Params p;
  std::vector<double> all;
  StreamCompressor sc(spec, p);
  for (std::uint64_t b = 0; b < 10; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-7, b + 7);
    sc.append_block(block);
    all.insert(all.end(), block.begin(), block.end());
  }
  EXPECT_EQ(sc.finish(), compress(all, spec, p));
}

TEST(Stream, EmptyStream) {
  const BlockSpec spec{4, 4};
  Params p;
  StreamCompressor sc(spec, p);
  const auto stream = sc.finish();
  StreamDecompressor sd(stream);
  EXPECT_EQ(sd.info().num_blocks, 0u);
  std::vector<double> block(16);
  EXPECT_FALSE(sd.next_block(block));
}

TEST(Stream, RejectsWrongBlockSize) {
  const BlockSpec spec{4, 4};
  Params p;
  StreamCompressor sc(spec, p);
  std::vector<double> wrong(15, 1.0);
  EXPECT_THROW(sc.append_block(wrong), std::invalid_argument);

  std::vector<double> data(32, 1.0);
  const auto stream = compress(data, spec, p);
  StreamDecompressor sd(stream);
  std::vector<double> small(8);
  EXPECT_THROW(sd.next_block(small), std::invalid_argument);
}

TEST(Stream, CompressorReusableAfterFinish) {
  const BlockSpec spec{4, 4};
  Params p;
  StreamCompressor sc(spec, p);
  const auto b1 = testutil::noisy_pattern_block(spec, 1e-6, 1);
  sc.append_block(b1);
  const auto s1 = sc.finish();
  sc.append_block(b1);
  const auto s2 = sc.finish();
  EXPECT_EQ(s1, s2);
}

TEST(Stream, TruncatedPayloadThrows) {
  const BlockSpec spec{8, 8};
  Params p;
  std::vector<double> data(64 * 3, 0.5);
  auto stream = compress(data, spec, p);
  // Cut into the payload section itself (the global header is 32 bytes,
  // so 34 bytes leaves a length varint with its payload missing) -- just
  // clipping the tail would only lose the v3 index, which the sequential
  // reader does not need.
  stream.resize(34);
  StreamDecompressor sd(stream);
  std::vector<double> block(64);
  EXPECT_THROW(
      {
        while (sd.next_block(block)) {
        }
      },
      std::exception);
}

TEST(Stream, StatsAccumulate) {
  const BlockSpec spec{6, 6};
  Params p;
  StreamCompressor sc(spec, p);
  for (std::uint64_t b = 0; b < 5; ++b) {
    sc.append_block(testutil::noisy_pattern_block(spec, 1e-6, b));
  }
  const auto stream = sc.finish();
  EXPECT_EQ(sc.stats().num_blocks, 5u);
  EXPECT_EQ(sc.stats().input_bytes, 5u * 36 * 8);
  EXPECT_EQ(sc.stats().output_bytes, stream.size());
}

}  // namespace
}  // namespace pastri
