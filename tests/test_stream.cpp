// Tests for the streaming (block-at-a-time) API and its interoperability
// with the one-shot compress/decompress functions.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/stream.h"
#include "test_util.h"

namespace pastri {
namespace {

using testutil::max_abs_diff;

TEST(Stream, InteropStreamingCompressOneShotDecompress) {
  const BlockSpec spec{9, 11};
  Params p;
  StreamCompressor sc(spec, p);
  std::vector<double> all;
  for (std::uint64_t b = 0; b < 20; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-6, b);
    sc.append_block(block);
    all.insert(all.end(), block.begin(), block.end());
  }
  EXPECT_EQ(sc.blocks_appended(), 20u);
  const auto stream = sc.finish();
  const auto back = decompress(stream);
  EXPECT_LE(max_abs_diff(all, back), p.error_bound * (1 + 1e-12));
}

TEST(Stream, InteropOneShotCompressStreamingDecompress) {
  const BlockSpec spec{6, 16};
  Params p;
  std::vector<double> all;
  for (std::uint64_t b = 0; b < 15; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-5, b + 100);
    all.insert(all.end(), block.begin(), block.end());
  }
  const auto stream = compress(all, spec, p);

  StreamDecompressor sd(stream);
  EXPECT_EQ(sd.info().num_blocks, 15u);
  EXPECT_EQ(sd.info().spec, spec);
  std::vector<double> block(spec.block_size());
  std::size_t b = 0;
  while (sd.next_block(block)) {
    EXPECT_LE(max_abs_diff(
                  std::span<const double>(all).subspan(
                      b * spec.block_size(), spec.block_size()),
                  block),
              p.error_bound * (1 + 1e-12))
        << "block " << b;
    ++b;
  }
  EXPECT_EQ(b, 15u);
  EXPECT_EQ(sd.blocks_remaining(), 0u);
  EXPECT_FALSE(sd.next_block(block));
}

TEST(Stream, IdenticalBytesToOneShot) {
  const BlockSpec spec{8, 8};
  Params p;
  std::vector<double> all;
  StreamCompressor sc(spec, p);
  for (std::uint64_t b = 0; b < 10; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-7, b + 7);
    sc.append_block(block);
    all.insert(all.end(), block.begin(), block.end());
  }
  EXPECT_EQ(sc.finish(), compress(all, spec, p));
}

TEST(Stream, EmptyStream) {
  const BlockSpec spec{4, 4};
  Params p;
  StreamCompressor sc(spec, p);
  const auto stream = sc.finish();
  StreamDecompressor sd(stream);
  EXPECT_EQ(sd.info().num_blocks, 0u);
  std::vector<double> block(16);
  EXPECT_FALSE(sd.next_block(block));
}

TEST(Stream, RejectsWrongBlockSize) {
  const BlockSpec spec{4, 4};
  Params p;
  StreamCompressor sc(spec, p);
  std::vector<double> wrong(15, 1.0);
  EXPECT_THROW(sc.append_block(wrong), std::invalid_argument);

  std::vector<double> data(32, 1.0);
  const auto stream = compress(data, spec, p);
  StreamDecompressor sd(stream);
  std::vector<double> small(8);
  EXPECT_THROW(sd.next_block(small), std::invalid_argument);
}

TEST(Stream, CompressorReusableAfterFinish) {
  const BlockSpec spec{4, 4};
  Params p;
  StreamCompressor sc(spec, p);
  const auto b1 = testutil::noisy_pattern_block(spec, 1e-6, 1);
  sc.append_block(b1);
  const auto s1 = sc.finish();
  sc.append_block(b1);
  const auto s2 = sc.finish();
  EXPECT_EQ(s1, s2);
}

TEST(Stream, TruncatedPayloadThrows) {
  const BlockSpec spec{8, 8};
  Params p;
  std::vector<double> data(64 * 3, 0.5);
  auto stream = compress(data, spec, p);
  // Cut into the payload section itself (the global header is 32 bytes,
  // so 34 bytes leaves a length varint with its payload missing) -- just
  // clipping the tail would only lose the v3 index, which the sequential
  // reader does not need.
  stream.resize(34);
  StreamDecompressor sd(stream);
  std::vector<double> block(64);
  EXPECT_THROW(
      {
        while (sd.next_block(block)) {
        }
      },
      std::exception);
}

TEST(Stream, StatsAccumulate) {
  const BlockSpec spec{6, 6};
  Params p;
  StreamCompressor sc(spec, p);
  for (std::uint64_t b = 0; b < 5; ++b) {
    sc.append_block(testutil::noisy_pattern_block(spec, 1e-6, b));
  }
  const auto stream = sc.finish();
  EXPECT_EQ(sc.stats().num_blocks, 5u);
  EXPECT_EQ(sc.stats().input_bytes, 5u * 36 * 8);
  EXPECT_EQ(sc.stats().output_bytes, stream.size());
}

// ---- StreamWriter / StreamConsumer (bounded-memory pipeline) ------------

std::vector<double> concat_blocks(const BlockSpec& spec, std::size_t n,
                                  std::uint64_t seed = 0) {
  std::vector<double> all;
  for (std::uint64_t b = 0; b < n; ++b) {
    const auto block = testutil::noisy_pattern_block(spec, 1e-6, seed + b);
    all.insert(all.end(), block.begin(), block.end());
  }
  return all;
}

/// Strip the v3 index + footer and relabel as a legacy v2 stream.
std::vector<std::uint8_t> strip_to_v2(std::vector<std::uint8_t> stream) {
  EXPECT_GE(stream.size(), 20u);
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, stream.data() + stream.size() - 20, 8);
  stream.resize(index_offset);
  stream[4] = 2;  // kStreamVersionUnindexed
  return stream;
}

TEST(Streaming, ByteIdentityUnderOddChunkSlicing) {
  // The container bytes must not depend on how the values were sliced
  // across put_values calls, the batch size, or the thread count.
  const BlockSpec spec{7, 13};
  Params p;
  const auto all = concat_blocks(spec, 23);
  const auto reference = compress(all, spec, p);
  for (std::size_t slice : {1u, 17u, 91u, 92u, 1000u}) {
    for (std::size_t batch : {1u, 3u, 0u}) {
      VectorSink sink;
      StreamWriter w(sink, spec, p,
                     StreamWriterOptions{.batch_blocks = batch});
      for (std::size_t at = 0; at < all.size(); at += slice) {
        const std::size_t n = std::min(slice, all.size() - at);
        w.put_values(std::span<const double>(all).subspan(at, n));
      }
      EXPECT_EQ(w.finish(), reference.size());
      EXPECT_EQ(sink.bytes(), reference)
          << "slice " << slice << " batch " << batch;
    }
  }
}

TEST(Streaming, AllZeroBlocksMidStream) {
  // Zero blocks (fully screened quartets) interleaved with real data:
  // they take the sparse/degenerate encode path mid-stream.
  const BlockSpec spec{6, 10};
  Params p;
  std::vector<double> all;
  for (std::uint64_t b = 0; b < 12; ++b) {
    if (b % 3 == 1) {
      all.insert(all.end(), spec.block_size(), 0.0);
    } else {
      const auto block = testutil::noisy_pattern_block(spec, 1e-6, b);
      all.insert(all.end(), block.begin(), block.end());
    }
  }
  VectorSink sink;
  StreamWriter w(sink, spec, p);
  w.put_values(all);
  w.finish();
  EXPECT_EQ(sink.bytes(), compress(all, spec, p));
  const auto back = decompress(sink.bytes());
  EXPECT_LE(max_abs_diff(all, back), p.error_bound * (1 + 1e-12));
  for (std::size_t i = 0; i < spec.block_size(); ++i) {
    EXPECT_EQ(back[spec.block_size() + i], 0.0);  // block 1 is all-zero
  }
}

TEST(Streaming, FinishWithZeroBlocks) {
  const BlockSpec spec{4, 4};
  Params p;
  VectorSink sink;
  StreamWriter w(sink, spec, p);
  const std::size_t total = w.finish();
  EXPECT_EQ(total, sink.bytes().size());
  EXPECT_EQ(peek_info(sink.bytes()).num_blocks, 0u);
  SpanSource src(sink.bytes());
  StreamConsumer c(src);
  std::vector<double> out(16);
  EXPECT_EQ(c.read_blocks(out), 0u);
  EXPECT_EQ(c.read_values(out), 0u);
}

TEST(Streaming, PartialTailAtFinishThrows) {
  const BlockSpec spec{4, 4};
  Params p;
  VectorSink sink;
  StreamWriter w(sink, spec, p);
  w.put_values(std::vector<double>(19, 0.5));  // 1 block + 3 values
  EXPECT_EQ(w.blocks_appended(), 1u);
  EXPECT_EQ(w.pending_values(), 3u);
  EXPECT_THROW(w.finish(), std::invalid_argument);
}

TEST(Streaming, AppendAfterFinishThrows) {
  const BlockSpec spec{4, 4};
  Params p;
  VectorSink sink;
  StreamWriter w(sink, spec, p);
  w.put_block(std::vector<double>(16, 0.25));
  w.finish();
  EXPECT_THROW(w.put_block(std::vector<double>(16, 0.25)),
               std::logic_error);
  EXPECT_THROW(w.finish(), std::logic_error);
}

TEST(Streaming, DeclaredBlockCountMismatchThrows) {
  const BlockSpec spec{4, 4};
  Params p;
  VectorSink sink;
  StreamWriter w(sink, spec, p,
                 StreamWriterOptions{.expected_blocks = 3});
  w.put_block(std::vector<double>(16, 0.5));
  w.put_block(std::vector<double>(16, 0.5));
  EXPECT_THROW(w.finish(), std::runtime_error);
}

TEST(Streaming, UnknownCountNeedsPatchableSink) {
  // A sink that cannot back-fill the header (e.g. a pipe) only works
  // when the block count is declared up-front.
  class AppendOnlySink final : public ByteSink {
   public:
    void write(std::span<const std::uint8_t> bytes) override {
      buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    }
    std::vector<std::uint8_t> buf_;
  };
  const BlockSpec spec{5, 5};
  Params p;
  AppendOnlySink pipe;
  EXPECT_THROW(StreamWriter(pipe, spec, p), std::logic_error);

  const auto all = concat_blocks(spec, 6);
  StreamWriter w(pipe, spec, p,
                 StreamWriterOptions{.expected_blocks = 6});
  w.put_values(all);
  w.finish();
  EXPECT_EQ(pipe.buf_, compress(all, spec, p));  // no patch was needed
}

TEST(Streaming, ConsumerReadValuesOddSizes) {
  // read_values chunk sizes that never align to block boundaries.
  const BlockSpec spec{6, 11};
  Params p;
  const auto all = concat_blocks(spec, 9);
  const auto stream = compress(all, spec, p);
  const auto reference = decompress(stream);
  for (std::size_t slice : {1u, 7u, 65u, 67u, 500u}) {
    SpanSource src(stream);
    StreamConsumer c(src);
    EXPECT_EQ(c.blocks_remaining(), 9u);
    std::vector<double> got;
    std::vector<double> buf(slice);
    std::size_t n;
    while ((n = c.read_values(buf)) > 0) {
      got.insert(got.end(), buf.begin(), buf.begin() + n);
    }
    EXPECT_EQ(got, reference) << "slice " << slice;
  }
}

TEST(Streaming, ConsumerChunkSmallerThanPayload) {
  // Chunk sizes far below a single block payload: the rolling buffer
  // must grow for one payload and keep compacting correctly.
  const BlockSpec spec{8, 12};
  Params p;
  const auto all = concat_blocks(spec, 14);
  const auto stream = compress(all, spec, p);
  const auto reference = decompress(stream);
  for (std::size_t chunk : {1u, 13u, 64u, 300u}) {
    SpanSource src(stream);
    StreamConsumer c(src, StreamConsumerOptions{.chunk_bytes = chunk});
    std::vector<double> got(reference.size());
    EXPECT_EQ(c.read_blocks(got), 14u) << "chunk " << chunk;
    EXPECT_EQ(got, reference) << "chunk " << chunk;
    EXPECT_EQ(c.blocks_remaining(), 0u);
  }
}

TEST(Streaming, ConsumerReadsLegacyV2) {
  // The sequential walk needs no index, so v2 streams decode too.
  const BlockSpec spec{9, 9};
  Params p;
  const auto all = concat_blocks(spec, 7);
  const auto v3 = compress(all, spec, p);
  const auto v2 = strip_to_v2(v3);
  SpanSource src(v2);
  StreamConsumer c(src, StreamConsumerOptions{.chunk_bytes = 128});
  EXPECT_EQ(c.info().version, kStreamVersionUnindexed);
  std::vector<double> got(all.size());
  EXPECT_EQ(c.read_blocks(got), 7u);
  EXPECT_EQ(got, decompress(v3));
}

TEST(Streaming, OstreamSinkIstreamSourceRoundTrip) {
  // File-style transport: bytes through std::iostream both ways, with
  // the container starting at a nonzero stream offset.
  const BlockSpec spec{6, 8};
  Params p;
  const auto all = concat_blocks(spec, 11);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss.write("hdr!", 4);  // preamble: container_base = 4
  OstreamSink sink(ss);
  StreamWriter w(sink, spec, p);  // count unknown -> patched at finish
  w.put_values(all);
  w.finish();

  const std::string bytes = ss.str();
  const auto reference = compress(all, spec, p);
  ASSERT_EQ(bytes.size(), 4 + reference.size());
  EXPECT_EQ(std::memcmp(bytes.data() + 4, reference.data(),
                        reference.size()),
            0);

  ss.seekg(4);
  IstreamSource src(ss);
  StreamConsumer c(src);
  std::vector<double> got(all.size());
  EXPECT_EQ(c.read_blocks(got), 11u);
  EXPECT_EQ(got, decompress(reference));
}

TEST(Streaming, DecompressHonorsThreadCount) {
  const BlockSpec spec{8, 8};
  Params p;
  const auto all = concat_blocks(spec, 16);
  const auto stream = compress(all, spec, p);
  const auto serial = decompress(stream, 1);
  const auto parallel = decompress(stream, 2);
  EXPECT_EQ(serial, parallel);  // bit-identical regardless of threads

  SpanSource src(stream);
  StreamConsumer c(src, StreamConsumerOptions{.num_threads = 2});
  std::vector<double> got(all.size());
  EXPECT_EQ(c.read_blocks(got), 16u);
  EXPECT_EQ(got, serial);
}

}  // namespace
}  // namespace pastri
