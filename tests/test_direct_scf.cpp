// Tests for integral-direct Fock construction (the Fig. 11 "Original"
// arm: recompute ERIs on the fly with Schwarz screening).
#include <gtest/gtest.h>

#include <cmath>

#include "core/pastri.h"
#include "qc/compressed_eri_store.h"
#include "qc/direct_scf.h"
#include "qc/sto3g.h"

namespace pastri::qc {
namespace {

Molecule h2o_molecule() {
  Molecule m;
  m.name = "H2O";
  m.atoms = {{"O", 8, {0, 0, 0}},
             {"H", 1, {0, 1.4305, 1.1093}},
             {"H", 1, {0, -1.4305, 1.1093}}};
  return m;
}

Molecule h2_molecule() {
  Molecule m;
  m.name = "H2";
  m.atoms = {{"H", 1, {0, 0, 0}}, {"H", 1, {1.4, 0, 0}}};
  return m;
}

TEST(DirectScf, GMatrixMatchesDenseTensor) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const std::size_t n = basis.num_basis_functions();
  const EriTensor eri = compute_eri_tensor(basis);
  const ScfResult ref = run_rhf(mol, basis, eri);

  // G(D) from the direct builder vs from the dense tensor at the
  // converged density.
  const DirectFockBuilder builder(basis, 0.0);  // no screening
  const Matrix g_direct = builder.build_g(ref.density);
  Matrix g_dense(n);
  for (std::size_t mu = 0; mu < n; ++mu) {
    for (std::size_t nu = 0; nu < n; ++nu) {
      double g = 0.0;
      for (std::size_t la = 0; la < n; ++la) {
        for (std::size_t si = 0; si < n; ++si) {
          g += ref.density(la, si) *
               (eri[((mu * n + nu) * n + si) * n + la] -
                0.5 * eri[((mu * n + la) * n + si) * n + nu]);
        }
      }
      g_dense(mu, nu) = g;
    }
  }
  EXPECT_LT(g_direct.max_abs_diff(g_dense), 1e-11);
}

TEST(DirectScf, EnergyMatchesTensorScf) {
  for (const Molecule& mol : {h2_molecule(), h2o_molecule()}) {
    const BasisSet basis = make_sto3g_basis(mol);
    const ScfResult tensor =
        run_rhf(mol, basis, compute_eri_tensor(basis));
    const ScfResult direct = run_rhf_direct(mol, basis);
    ASSERT_TRUE(direct.converged) << mol.name;
    EXPECT_NEAR(direct.total_energy, tensor.total_energy, 1e-7)
        << mol.name;
  }
}

TEST(DirectScf, EnergyFromCompressedStoreMatches) {
  // The decompress-direct arm: the SCF consumes compressed integrals
  // quartet-by-quartet (LRU-cached single-block decodes) and must land
  // on the same fixed point as recompute-direct, with zero recomputed
  // quartets and real cache traffic.
  for (const Molecule& mol : {h2_molecule(), h2o_molecule()}) {
    const BasisSet basis = make_sto3g_basis(mol);
    Params p;
    p.error_bound = 1e-12;
    const CompressedEriStore store(basis, p);
    const ScfResult direct = run_rhf_direct(mol, basis);
    const ScfResult stored = run_rhf_from_store(mol, basis, store);
    ASSERT_TRUE(stored.converged) << mol.name;
    EXPECT_NEAR(stored.total_energy, direct.total_energy, 1e-7)
        << mol.name;
    EXPECT_GT(store.cache_hits() + store.cache_misses(), 0u) << mol.name;
  }
}

TEST(DirectScf, StoreBuilderRejectsMismatchedBasis) {
  const BasisSet h2o = make_sto3g_basis(h2o_molecule());
  const BasisSet h2 = make_sto3g_basis(h2_molecule());
  Params p;
  const CompressedEriStore store(h2, p);
  EXPECT_THROW(DirectFockBuilder(h2o, store), std::invalid_argument);
}

TEST(DirectScf, ScreeningSkipsQuartetsWithoutChangingEnergy) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const ScfResult loose = run_rhf_direct(mol, basis, {}, 1e-9);
  const ScfResult exact = run_rhf_direct(mol, basis, {}, 0.0);
  ASSERT_TRUE(loose.converged);
  EXPECT_NEAR(loose.total_energy, exact.total_energy, 1e-6);

  // A stretched system screens a real fraction of quartets.
  Molecule far = mol;
  far.atoms.push_back({"H", 1, {25.0, 0, 0}});
  far.atoms.push_back({"H", 1, {26.4, 0, 0}});
  const BasisSet basis_far = make_sto3g_basis(far);
  const DirectFockBuilder builder(basis_far, 1e-9);
  Matrix d(basis_far.num_basis_functions());
  for (std::size_t i = 0; i < d.size(); ++i) d(i, i) = 1.0;
  builder.build_g(d);
  EXPECT_GT(builder.last_screened(), builder.total_quartets() / 10);
}

}  // namespace
}  // namespace pastri::qc
