// Tests for the one-electron integrals, STO-3G basis, and the RHF
// solver -- anchored to published STO-3G Hartree-Fock energies, which
// transitively validates the Boys function, the Hermite recurrences, and
// the ERI engine to ~1e-5 Hartree.
#include <gtest/gtest.h>

#include <cmath>

#include "qc/one_electron.h"
#include "qc/scf.h"
#include "qc/sto3g.h"

namespace pastri::qc {
namespace {

Molecule h2_molecule(double r_bohr = 1.4) {
  Molecule m;
  m.name = "H2";
  m.atoms = {{"H", 1, {0, 0, 0}}, {"H", 1, {r_bohr, 0, 0}}};
  return m;
}

Molecule he_molecule() {
  Molecule m;
  m.name = "He";
  m.atoms = {{"He", 2, {0, 0, 0}}};
  return m;
}

Molecule h2o_molecule() {
  // R_OH ~ 0.9572 A, HOH ~ 104.52 deg.
  Molecule m;
  m.name = "H2O";
  m.atoms = {{"O", 8, {0, 0, 0}},
             {"H", 1, {0, 1.4305, 1.1093}},
             {"H", 1, {0, -1.4305, 1.1093}}};
  return m;
}

TEST(Sto3g, ShellCounts) {
  // H: one s shell.  O: 1s + 2s + 2p.
  EXPECT_EQ(make_sto3g_basis(h2_molecule()).num_shells(), 2u);
  const BasisSet h2o = make_sto3g_basis(h2o_molecule());
  EXPECT_EQ(h2o.num_shells(), 5u);
  EXPECT_EQ(h2o.num_basis_functions(), 7u);  // 1s 2s 2px 2py 2pz + 2 H
}

TEST(Sto3g, UnsupportedElementThrows) {
  Molecule m;
  m.name = "LiH";
  m.atoms = {{"H", 1, {0, 0, 0}}};
  m.atoms.push_back({"H", 1, {1, 0, 0}});
  m.atoms[0].Z = 3;  // pretend lithium
  m.atoms[0].symbol = "Li";
  EXPECT_THROW(make_sto3g_basis(m), std::invalid_argument);
}

TEST(Sto3g, ElectronCount) {
  EXPECT_EQ(electron_count(h2_molecule()), 2);
  EXPECT_EQ(electron_count(h2o_molecule()), 10);
}

TEST(OneElectron, OverlapDiagonalIsOne) {
  for (const Molecule& mol : {h2_molecule(), h2o_molecule()}) {
    const BasisSet basis = make_sto3g_basis(mol);
    const Matrix s = overlap_matrix(basis);
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_NEAR(s(i, i), 1.0, 1e-10) << mol.name << " i=" << i;
    }
  }
}

TEST(OneElectron, OverlapSymmetricContracting) {
  const BasisSet basis = make_sto3g_basis(h2o_molecule());
  const Matrix s = overlap_matrix(basis);
  EXPECT_LT(s.max_abs_diff(s.transpose()), 1e-12);
  // Off-diagonals bounded by Cauchy-Schwarz.
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = 0; j < s.size(); ++j) {
      EXPECT_LE(std::abs(s(i, j)), 1.0 + 1e-10);
    }
  }
}

TEST(OneElectron, SzaboH2ReferenceMatrices) {
  // Szabo & Ostlund give the STO-3G H2 (R=1.4) matrix elements:
  // S12 = 0.6593, T11 = 0.7600, T12 = 0.2365, V11 = -1.8804.
  const BasisSet basis = make_sto3g_basis(h2_molecule());
  const Matrix s = overlap_matrix(basis);
  const Matrix t = kinetic_matrix(basis);
  const Matrix v = nuclear_attraction_matrix(basis, h2_molecule());
  EXPECT_NEAR(s(0, 1), 0.6593, 2e-4);
  EXPECT_NEAR(t(0, 0), 0.7600, 2e-4);
  EXPECT_NEAR(t(0, 1), 0.2365, 2e-4);
  EXPECT_NEAR(v(0, 0), -1.8804, 2e-4);
}

TEST(OneElectron, KineticPositiveDiagonal) {
  const BasisSet basis = make_sto3g_basis(h2o_molecule());
  const Matrix t = kinetic_matrix(basis);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GT(t(i, i), 0.0);
  }
  EXPECT_LT(t.max_abs_diff(t.transpose()), 1e-12);
}

TEST(OneElectron, NuclearAttractionNegativeDiagonal) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const Matrix v = nuclear_attraction_matrix(basis, mol);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LT(v(i, i), 0.0);
  }
}

TEST(OneElectron, NuclearRepulsionH2) {
  // Z1 Z2 / R = 1 / 1.4.
  EXPECT_NEAR(nuclear_repulsion(h2_molecule()), 1.0 / 1.4, 1e-14);
}

TEST(Rhf, H2MatchesSzabo) {
  // E(RHF/STO-3G, R = 1.4 a0) = -1.1167 Hartree.
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const ScfResult res = run_rhf(mol, basis, compute_eri_tensor(basis));
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.total_energy, -1.1167, 2e-4);
}

TEST(Rhf, HeMatchesReference) {
  // E(RHF/STO-3G) = -2.807784 Hartree.
  const Molecule mol = he_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const ScfResult res = run_rhf(mol, basis, compute_eri_tensor(basis));
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.total_energy, -2.807784, 1e-5);
}

TEST(Rhf, WaterMatchesReference) {
  // E(RHF/STO-3G) ~ -74.963 Hartree at the experimental geometry.
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const ScfResult res = run_rhf(mol, basis, compute_eri_tensor(basis));
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.total_energy, -74.963, 5e-3);
}

TEST(Rhf, VirialTheoremApproximate) {
  // For a converged HF wavefunction near equilibrium, -V/T ~ 2.
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const ScfResult res = run_rhf(mol, basis, compute_eri_tensor(basis));
  const Matrix t = kinetic_matrix(basis);
  double kinetic = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t j = 0; j < t.size(); ++j) {
      kinetic += res.density(i, j) * t(j, i);
    }
  }
  const double potential = res.total_energy - kinetic;
  EXPECT_NEAR(-potential / kinetic, 2.0, 0.1);
}

TEST(Rhf, OrbitalEnergiesH2) {
  // Szabo & Ostlund: eps_1 = -0.578, eps_2 = 0.670 for H2/STO-3G.
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const ScfResult res = run_rhf(mol, basis, compute_eri_tensor(basis));
  ASSERT_EQ(res.orbital_energies.size(), 2u);
  EXPECT_NEAR(res.orbital_energies[0], -0.578, 5e-3);
  EXPECT_NEAR(res.orbital_energies[1], 0.670, 5e-3);
}

TEST(Rhf, DiisAcceleratesConvergence) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor eri = compute_eri_tensor(basis);
  ScfOptions with, without;
  without.use_diis = false;
  const ScfResult r_diis = run_rhf(mol, basis, eri, with);
  const ScfResult r_plain = run_rhf(mol, basis, eri, without);
  ASSERT_TRUE(r_diis.converged);
  ASSERT_TRUE(r_plain.converged);
  // Same fixed point, fewer iterations.
  EXPECT_NEAR(r_diis.total_energy, r_plain.total_energy, 1e-7);
  EXPECT_LT(r_diis.iterations, r_plain.iterations);
}

TEST(Rhf, SolveLinearKnownSystem) {
  Matrix a(2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = solve_linear(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Rhf, SolveLinearSingularThrows) {
  Matrix a(2);  // zero matrix
  EXPECT_THROW(solve_linear(a, {1, 1}), std::runtime_error);
}

TEST(Rhf, OddElectronCountThrows) {
  Molecule m;
  m.name = "H";
  m.atoms = {{"H", 1, {0, 0, 0}}};
  const BasisSet basis = make_sto3g_basis(m);
  EXPECT_THROW(run_rhf(m, basis, compute_eri_tensor(basis)),
               std::invalid_argument);
}

TEST(Rhf, WrongEriSizeThrows) {
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  EriTensor wrong(3, 0.0);
  EXPECT_THROW(run_rhf(mol, basis, wrong), std::invalid_argument);
}

TEST(Rhf, EnergyInvariantUnderRigidTranslation) {
  Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const double e0 =
      run_rhf(mol, basis, compute_eri_tensor(basis)).total_energy;
  for (auto& atom : mol.atoms) {
    atom.position[0] += 3.0;
    atom.position[2] -= 1.5;
  }
  const BasisSet basis2 = make_sto3g_basis(mol);
  const double e1 =
      run_rhf(mol, basis2, compute_eri_tensor(basis2)).total_energy;
  EXPECT_NEAR(e0, e1, 1e-8);
}

TEST(Rhf, EriTensorPermutationSymmetry) {
  const BasisSet basis = make_sto3g_basis(h2o_molecule());
  const EriTensor eri = compute_eri_tensor(basis);
  const std::size_t n = basis.num_basis_functions();
  auto at = [&](std::size_t a, std::size_t b, std::size_t c,
                std::size_t d) {
    return eri[((a * n + b) * n + c) * n + d];
  };
  for (std::size_t a = 0; a < n; a += 2) {
    for (std::size_t b = 0; b < n; b += 3) {
      for (std::size_t c = 0; c < n; c += 2) {
        for (std::size_t d = 0; d < n; d += 3) {
          EXPECT_NEAR(at(a, b, c, d), at(b, a, c, d), 1e-12);
          EXPECT_NEAR(at(a, b, c, d), at(c, d, a, b), 1e-12);
          EXPECT_NEAR(at(a, b, c, d), at(a, b, d, c), 1e-12);
        }
      }
    }
  }
}

}  // namespace
}  // namespace pastri::qc
