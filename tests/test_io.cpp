// Tests for the PFS performance model and file-per-process I/O helpers.
#include <gtest/gtest.h>

#include <filesystem>

#include "io/file_per_process.h"
#include "io/pfs_model.h"

namespace pastri::io {
namespace {

TEST(PfsModel, BandwidthMonotoneInCores) {
  const PfsModel m;
  double prev = 0.0;
  for (int cores : {1, 16, 64, 256, 1024, 4096}) {
    const double bw = m.aggregate_bandwidth(cores);
    EXPECT_GE(bw, prev) << cores;
    prev = bw;
  }
}

TEST(PfsModel, BandwidthSaturatesBelowPeak) {
  const PfsModel m;
  EXPECT_LT(m.aggregate_bandwidth(1 << 20), m.peak_bandwidth_mbps);
  EXPECT_GT(m.aggregate_bandwidth(1 << 20), 0.99 * m.peak_bandwidth_mbps);
}

TEST(PfsModel, SmallCoreCountTakesBindingMinimum) {
  const PfsModel m;
  const double expect =
      std::min(m.per_core_bandwidth_mbps,
               m.peak_bandwidth_mbps / (1.0 + m.half_saturation_cores));
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth(1), expect);
  EXPECT_LE(m.aggregate_bandwidth(1), m.per_core_bandwidth_mbps);
}

TEST(PfsModel, RejectsZeroCores) {
  const PfsModel m;
  EXPECT_THROW(m.aggregate_bandwidth(0), std::invalid_argument);
}

TEST(PfsModel, HigherRatioDumpsFaster) {
  const PfsModel m;
  CodecProfile slow{"low", 5.0, 500.0, 800.0};
  CodecProfile fast{"high", 17.0, 500.0, 800.0};
  const double t_slow = dump_time(m, slow, 2000.0, 512).total_seconds();
  const double t_fast = dump_time(m, fast, 2000.0, 512).total_seconds();
  EXPECT_LT(t_fast, t_slow);
}

TEST(PfsModel, LoadMirrorsDump) {
  const PfsModel m;
  CodecProfile c{"x", 10.0, 400.0, 400.0};
  const IoTimes d = dump_time(m, c, 1000.0, 256);
  const IoTimes l = load_time(m, c, 1000.0, 256);
  EXPECT_DOUBLE_EQ(d.io_seconds, l.io_seconds);  // symmetric BW model
  EXPECT_DOUBLE_EQ(d.compute_seconds, l.compute_seconds);
}

TEST(PfsModel, MoreCoresNeverSlower) {
  const PfsModel m;
  CodecProfile c{"x", 16.8, 660.0, 1110.0};
  double prev = 1e300;
  for (int cores : {256, 512, 1024, 2048}) {
    const double t = dump_time(m, c, 2000.0, cores).total_seconds();
    EXPECT_LE(t, prev) << cores;
    prev = t;
  }
}

TEST(PfsModel, RawIoDominatesCompressed) {
  // The paper: writing the original data takes "extremely long" compared
  // with compressed dumps.
  const PfsModel m;
  CodecProfile c{"PaSTRI", 16.8, 660.0, 1110.0};
  const double raw = raw_io_time(m, 2000.0, 1024);
  const double dumped = dump_time(m, c, 2000.0, 1024).total_seconds();
  EXPECT_GT(raw, 2.0 * dumped);
}

class FppTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "pastri_fpp_test")
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(FppTest, WriteReadRoundTrip) {
  const std::vector<std::uint8_t> data{10, 20, 30, 40, 50};
  write_rank_file(dir_, "chunk", 3, data);
  EXPECT_EQ(read_rank_file(dir_, "chunk", 3), data);
  EXPECT_TRUE(remove_rank_file(dir_, "chunk", 3));
  EXPECT_FALSE(remove_rank_file(dir_, "chunk", 3));
}

TEST_F(FppTest, ReadMissingThrows) {
  EXPECT_THROW(read_rank_file(dir_, "nope", 0), std::runtime_error);
  EXPECT_THROW(rank_file_size(dir_, "nope", 0), std::runtime_error);
  EXPECT_THROW(read_rank_file_slice(dir_, "nope", 0, 0, 1),
               std::runtime_error);
}

TEST_F(FppTest, SliceReadsExactRanges) {
  const std::vector<std::uint8_t> data{10, 20, 30, 40, 50, 60};
  write_rank_file(dir_, "chunk", 0, data);
  EXPECT_EQ(rank_file_size(dir_, "chunk", 0), data.size());
  EXPECT_EQ(read_rank_file_slice(dir_, "chunk", 0, 0, 6), data);
  EXPECT_EQ(read_rank_file_slice(dir_, "chunk", 0, 2, 3),
            (std::vector<std::uint8_t>{30, 40, 50}));
  EXPECT_EQ(read_rank_file_slice(dir_, "chunk", 0, 5, 1),
            (std::vector<std::uint8_t>{60}));
  EXPECT_TRUE(read_rank_file_slice(dir_, "chunk", 0, 6, 0).empty());
  // Past-the-end slices are rejected, not clamped.
  EXPECT_THROW(read_rank_file_slice(dir_, "chunk", 0, 5, 2),
               std::runtime_error);
  EXPECT_THROW(read_rank_file_slice(dir_, "chunk", 0, 7, 0),
               std::runtime_error);
}

TEST_F(FppTest, TimedDumpLoadPreservesData) {
  std::vector<std::uint8_t> data(1 << 18);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  const double dump_secs = timed_dump(dir_, "blob", 7, data);
  EXPECT_GE(dump_secs, 0.0);
  double load_secs = -1.0;
  const auto back = timed_load(dir_, "blob", 7, &load_secs);
  EXPECT_EQ(back, data);
  EXPECT_GE(load_secs, 0.0);
  for (int r = 0; r < 7; ++r) remove_rank_file(dir_, "blob", r);
}

TEST_F(FppTest, MoreRanksThanBytes) {
  const std::vector<std::uint8_t> data{1, 2};
  timed_dump(dir_, "tiny", 5, data);
  const auto back = timed_load(dir_, "tiny", 5, nullptr);
  EXPECT_EQ(back, data);
}

}  // namespace
}  // namespace pastri::io
