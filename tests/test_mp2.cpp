// Tests for MP2 and the AO->MO integral transformation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pastri.h"
#include "qc/mp2.h"
#include "qc/sto3g.h"

namespace pastri::qc {
namespace {

Molecule h2_molecule() {
  Molecule m;
  m.name = "H2";
  m.atoms = {{"H", 1, {0, 0, 0}}, {"H", 1, {1.4, 0, 0}}};
  return m;
}

Molecule h2o_molecule() {
  Molecule m;
  m.name = "H2O";
  m.atoms = {{"O", 8, {0, 0, 0}},
             {"H", 1, {0, 1.4305, 1.1093}},
             {"H", 1, {0, -1.4305, 1.1093}}};
  return m;
}

TEST(Mp2Transform, MoTensorHasMoSymmetries) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor ao = compute_eri_tensor(basis);
  const ScfResult scf = run_rhf(mol, basis, ao);
  const EriTensor mo = transform_eri_to_mo(ao, scf.mo_coefficients);
  const std::size_t n = basis.num_basis_functions();
  auto at = [n, &mo](std::size_t p, std::size_t q, std::size_t r,
                     std::size_t s) {
    return mo[((p * n + q) * n + r) * n + s];
  };
  for (std::size_t p = 0; p < n; p += 2) {
    for (std::size_t q = 0; q < n; q += 3) {
      for (std::size_t r = 0; r < n; r += 2) {
        for (std::size_t s = 0; s < n; s += 3) {
          EXPECT_NEAR(at(p, q, r, s), at(q, p, r, s), 1e-10);
          EXPECT_NEAR(at(p, q, r, s), at(r, s, p, q), 1e-10);
        }
      }
    }
  }
}

TEST(Mp2Transform, IdentityCoefficientsAreNoop) {
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor ao = compute_eri_tensor(basis);
  const EriTensor same =
      transform_eri_to_mo(ao, Matrix::identity(2));
  for (std::size_t i = 0; i < ao.size(); ++i) {
    EXPECT_NEAR(same[i], ao[i], 1e-13);
  }
}

TEST(Mp2, H2MinimalBasisClosedForm) {
  // Two electrons in two orbitals: the only double excitation gives
  // E_MP2 = -(gu|gu)^2 / (2 (e_u - e_g)).
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor ao = compute_eri_tensor(basis);
  const ScfResult scf = run_rhf(mol, basis, ao);
  const Mp2Result mp2 = run_mp2(mol, basis, ao, scf);

  const EriTensor mo = transform_eri_to_mo(ao, scf.mo_coefficients);
  const double gu_gu = mo[((0 * 2 + 1) * 2 + 0) * 2 + 1];  // (01|01)
  const double expect =
      -gu_gu * gu_gu /
      (2.0 * (scf.orbital_energies[1] - scf.orbital_energies[0]));
  EXPECT_NEAR(mp2.correlation_energy, expect, 1e-10);
  // Literature ballpark for H2/STO-3G at R = 1.4: ~ -0.013 Hartree.
  EXPECT_LT(mp2.correlation_energy, -0.005);
  EXPECT_GT(mp2.correlation_energy, -0.03);
}

TEST(Mp2, H2AgainstFullCi) {
  // In a 2-electron / 2-orbital space the exact (FCI) ground state comes
  // from the 2x2 matrix in the { |g g|, |u u| } determinant basis:
  //   [ 0      K   ]         with K = (gu|gu), and
  //   [ K   2(e_u - e_g) + (uu|uu) + (gg|gg) - 4(gg|uu) + 2(gu|gu) ]
  // MP2 must recover a large fraction of, but never exceed, the FCI
  // correlation energy.
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor ao = compute_eri_tensor(basis);
  const ScfResult scf = run_rhf(mol, basis, ao);
  const Mp2Result mp2 = run_mp2(mol, basis, ao, scf);

  const EriTensor mo = transform_eri_to_mo(ao, scf.mo_coefficients);
  auto at = [&mo](std::size_t p, std::size_t q, std::size_t r,
                  std::size_t s) {
    return mo[((p * 2 + q) * 2 + r) * 2 + s];
  };
  const double K = at(0, 1, 0, 1);
  const double d =
      2.0 * (scf.orbital_energies[1] - scf.orbital_energies[0]) +
      at(0, 0, 0, 0) + at(1, 1, 1, 1) - 4.0 * at(0, 0, 1, 1) +
      2.0 * at(0, 1, 0, 1);
  // Ground eigenvalue of [[0, K], [K, d]] relative to the HF reference:
  const double fci_corr = 0.5 * (d - std::sqrt(d * d + 4.0 * K * K));
  EXPECT_LT(fci_corr, 0.0);
  EXPECT_LT(mp2.correlation_energy, 0.0);
  EXPECT_GE(mp2.correlation_energy, fci_corr * 1.001);  // |MP2| <= |FCI|
  EXPECT_LE(mp2.correlation_energy, fci_corr * 0.5);    // recovers >50%
}

TEST(Mp2, WaterCorrelationNegativeAndSane) {
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor ao = compute_eri_tensor(basis);
  const ScfResult scf = run_rhf(mol, basis, ao);
  const Mp2Result mp2 = run_mp2(mol, basis, ao, scf);
  // H2O/STO-3G MP2 correlation is a few tens of millihartree.
  EXPECT_LT(mp2.correlation_energy, -0.01);
  EXPECT_GT(mp2.correlation_energy, -0.15);
  EXPECT_NEAR(mp2.total_energy,
              scf.total_energy + mp2.correlation_energy, 1e-14);
}

TEST(Mp2, RequiresConvergedScf) {
  const Molecule mol = h2_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor ao = compute_eri_tensor(basis);
  ScfResult unconverged;
  unconverged.converged = false;
  EXPECT_THROW(run_mp2(mol, basis, ao, unconverged),
               std::invalid_argument);
}

TEST(Mp2, CompressedEriChangesEnergyWithinBound) {
  // The paper's post-HF motivation end-to-end: MP2 from a
  // PaSTRI-compressed ERI store matches the exact-ERI result to within
  // a perturbation consistent with EB.
  const Molecule mol = h2o_molecule();
  const BasisSet basis = make_sto3g_basis(mol);
  const EriTensor ao = compute_eri_tensor(basis);
  const ScfResult scf = run_rhf(mol, basis, ao);
  const Mp2Result exact = run_mp2(mol, basis, ao, scf);

  const std::size_t n = basis.num_basis_functions();
  pastri::Params p;
  p.error_bound = 1e-10;
  const auto stream =
      pastri::compress(ao, pastri::BlockSpec{n, n * n * n}, p);
  const EriTensor restored = pastri::decompress(stream);
  const ScfResult scf2 = run_rhf(mol, basis, restored);
  const Mp2Result lossy = run_mp2(mol, basis, restored, scf2);
  EXPECT_NEAR(lossy.total_energy, exact.total_energy, 1e-6);
}

}  // namespace
}  // namespace pastri::qc
