# Empty dependencies file for bench_fig10_parallel_io.
# This may be replaced when dependencies are built.
