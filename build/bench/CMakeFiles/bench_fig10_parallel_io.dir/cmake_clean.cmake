file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_parallel_io.dir/bench_fig10_parallel_io.cpp.o"
  "CMakeFiles/bench_fig10_parallel_io.dir/bench_fig10_parallel_io.cpp.o.d"
  "bench_fig10_parallel_io"
  "bench_fig10_parallel_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_parallel_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
