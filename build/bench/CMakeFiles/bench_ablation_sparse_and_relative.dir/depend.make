# Empty dependencies file for bench_ablation_sparse_and_relative.
# This may be replaced when dependencies are built.
