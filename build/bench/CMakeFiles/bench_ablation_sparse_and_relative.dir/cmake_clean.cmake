file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sparse_and_relative.dir/bench_ablation_sparse_and_relative.cpp.o"
  "CMakeFiles/bench_ablation_sparse_and_relative.dir/bench_ablation_sparse_and_relative.cpp.o.d"
  "bench_ablation_sparse_and_relative"
  "bench_ablation_sparse_and_relative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sparse_and_relative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
