file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ecq_distribution.dir/bench_fig6_ecq_distribution.cpp.o"
  "CMakeFiles/bench_fig6_ecq_distribution.dir/bench_fig6_ecq_distribution.cpp.o.d"
  "bench_fig6_ecq_distribution"
  "bench_fig6_ecq_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ecq_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
