file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b_rate_distortion.dir/bench_fig9b_rate_distortion.cpp.o"
  "CMakeFiles/bench_fig9b_rate_distortion.dir/bench_fig9b_rate_distortion.cpp.o.d"
  "bench_fig9b_rate_distortion"
  "bench_fig9b_rate_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_rate_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
