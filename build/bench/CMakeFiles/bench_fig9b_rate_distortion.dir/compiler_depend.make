# Empty compiler generated dependencies file for bench_fig9b_rate_distortion.
# This may be replaced when dependencies are built.
