file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_encoding_trees.dir/bench_fig7_encoding_trees.cpp.o"
  "CMakeFiles/bench_fig7_encoding_trees.dir/bench_fig7_encoding_trees.cpp.o.d"
  "bench_fig7_encoding_trees"
  "bench_fig7_encoding_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_encoding_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
