# Empty dependencies file for bench_fig7_encoding_trees.
# This may be replaced when dependencies are built.
