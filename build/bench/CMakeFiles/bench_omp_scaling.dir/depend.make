# Empty dependencies file for bench_omp_scaling.
# This may be replaced when dependencies are built.
