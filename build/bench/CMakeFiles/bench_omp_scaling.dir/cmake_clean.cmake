file(REMOVE_RECURSE
  "CMakeFiles/bench_omp_scaling.dir/bench_omp_scaling.cpp.o"
  "CMakeFiles/bench_omp_scaling.dir/bench_omp_scaling.cpp.o.d"
  "bench_omp_scaling"
  "bench_omp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_omp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
