file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9cd_rates.dir/bench_fig9cd_rates.cpp.o"
  "CMakeFiles/bench_fig9cd_rates.dir/bench_fig9cd_rates.cpp.o.d"
  "bench_fig9cd_rates"
  "bench_fig9cd_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9cd_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
