# Empty dependencies file for bench_fig9cd_rates.
# This may be replaced when dependencies are built.
