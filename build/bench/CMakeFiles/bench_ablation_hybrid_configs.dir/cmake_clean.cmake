file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hybrid_configs.dir/bench_ablation_hybrid_configs.cpp.o"
  "CMakeFiles/bench_ablation_hybrid_configs.dir/bench_ablation_hybrid_configs.cpp.o.d"
  "bench_ablation_hybrid_configs"
  "bench_ablation_hybrid_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hybrid_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
