# Empty dependencies file for bench_ablation_hybrid_configs.
# This may be replaced when dependencies are built.
