file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lossless.dir/bench_ablation_lossless.cpp.o"
  "CMakeFiles/bench_ablation_lossless.dir/bench_ablation_lossless.cpp.o.d"
  "bench_ablation_lossless"
  "bench_ablation_lossless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lossless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
