# Empty dependencies file for bench_ablation_lossless.
# This may be replaced when dependencies are built.
