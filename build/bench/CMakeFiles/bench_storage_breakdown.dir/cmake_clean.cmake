file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_breakdown.dir/bench_storage_breakdown.cpp.o"
  "CMakeFiles/bench_storage_breakdown.dir/bench_storage_breakdown.cpp.o.d"
  "bench_storage_breakdown"
  "bench_storage_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
