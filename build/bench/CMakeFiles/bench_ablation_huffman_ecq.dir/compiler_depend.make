# Empty compiler generated dependencies file for bench_ablation_huffman_ecq.
# This may be replaced when dependencies are built.
