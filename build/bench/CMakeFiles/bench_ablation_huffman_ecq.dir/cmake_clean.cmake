file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_huffman_ecq.dir/bench_ablation_huffman_ecq.cpp.o"
  "CMakeFiles/bench_ablation_huffman_ecq.dir/bench_ablation_huffman_ecq.cpp.o.d"
  "bench_ablation_huffman_ecq"
  "bench_ablation_huffman_ecq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_huffman_ecq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
