file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset_census.dir/bench_dataset_census.cpp.o"
  "CMakeFiles/bench_dataset_census.dir/bench_dataset_census.cpp.o.d"
  "bench_dataset_census"
  "bench_dataset_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
