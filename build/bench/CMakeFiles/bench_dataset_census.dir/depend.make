# Empty dependencies file for bench_dataset_census.
# This may be replaced when dependencies are built.
