file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pattern.dir/bench_fig3_pattern.cpp.o"
  "CMakeFiles/bench_fig3_pattern.dir/bench_fig3_pattern.cpp.o.d"
  "bench_fig3_pattern"
  "bench_fig3_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
