# Empty compiler generated dependencies file for bench_fig11_recompute_vs_decompress.
# This may be replaced when dependencies are built.
