file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_recompute_vs_decompress.dir/bench_fig11_recompute_vs_decompress.cpp.o"
  "CMakeFiles/bench_fig11_recompute_vs_decompress.dir/bench_fig11_recompute_vs_decompress.cpp.o.d"
  "bench_fig11_recompute_vs_decompress"
  "bench_fig11_recompute_vs_decompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_recompute_vs_decompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
