# Empty compiler generated dependencies file for bench_fig9a_ratios.
# This may be replaced when dependencies are built.
