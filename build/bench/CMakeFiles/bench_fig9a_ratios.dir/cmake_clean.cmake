file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9a_ratios.dir/bench_fig9a_ratios.cpp.o"
  "CMakeFiles/bench_fig9a_ratios.dir/bench_fig9a_ratios.cpp.o.d"
  "bench_fig9a_ratios"
  "bench_fig9a_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
