file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_scaling_metrics.dir/bench_fig4_scaling_metrics.cpp.o"
  "CMakeFiles/bench_fig4_scaling_metrics.dir/bench_fig4_scaling_metrics.cpp.o.d"
  "bench_fig4_scaling_metrics"
  "bench_fig4_scaling_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scaling_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
