# Empty compiler generated dependencies file for bench_fig4_scaling_metrics.
# This may be replaced when dependencies are built.
