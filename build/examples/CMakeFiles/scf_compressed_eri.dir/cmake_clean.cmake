file(REMOVE_RECURSE
  "CMakeFiles/scf_compressed_eri.dir/scf_compressed_eri.cpp.o"
  "CMakeFiles/scf_compressed_eri.dir/scf_compressed_eri.cpp.o.d"
  "scf_compressed_eri"
  "scf_compressed_eri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scf_compressed_eri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
