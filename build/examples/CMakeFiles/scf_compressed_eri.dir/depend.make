# Empty dependencies file for scf_compressed_eri.
# This may be replaced when dependencies are built.
