file(REMOVE_RECURSE
  "CMakeFiles/compare_compressors.dir/compare_compressors.cpp.o"
  "CMakeFiles/compare_compressors.dir/compare_compressors.cpp.o.d"
  "compare_compressors"
  "compare_compressors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_compressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
