# Empty compiler generated dependencies file for compare_compressors.
# This may be replaced when dependencies are built.
