# Empty dependencies file for io_pipeline.
# This may be replaced when dependencies are built.
