file(REMOVE_RECURSE
  "CMakeFiles/io_pipeline.dir/io_pipeline.cpp.o"
  "CMakeFiles/io_pipeline.dir/io_pipeline.cpp.o.d"
  "io_pipeline"
  "io_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
