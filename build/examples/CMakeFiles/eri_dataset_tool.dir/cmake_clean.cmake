file(REMOVE_RECURSE
  "CMakeFiles/eri_dataset_tool.dir/eri_dataset_tool.cpp.o"
  "CMakeFiles/eri_dataset_tool.dir/eri_dataset_tool.cpp.o.d"
  "eri_dataset_tool"
  "eri_dataset_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eri_dataset_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
