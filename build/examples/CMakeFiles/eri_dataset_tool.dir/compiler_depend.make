# Empty compiler generated dependencies file for eri_dataset_tool.
# This may be replaced when dependencies are built.
