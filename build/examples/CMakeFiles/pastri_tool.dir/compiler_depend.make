# Empty compiler generated dependencies file for pastri_tool.
# This may be replaced when dependencies are built.
