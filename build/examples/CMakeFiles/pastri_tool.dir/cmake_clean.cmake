file(REMOVE_RECURSE
  "CMakeFiles/pastri_tool.dir/pastri_tool.cpp.o"
  "CMakeFiles/pastri_tool.dir/pastri_tool.cpp.o.d"
  "pastri_tool"
  "pastri_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastri_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
