# Empty dependencies file for zcheck.
# This may be replaced when dependencies are built.
