file(REMOVE_RECURSE
  "CMakeFiles/zcheck.dir/zcheck.cpp.o"
  "CMakeFiles/zcheck.dir/zcheck.cpp.o.d"
  "zcheck"
  "zcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
