file(REMOVE_RECURSE
  "CMakeFiles/pattern_explorer.dir/pattern_explorer.cpp.o"
  "CMakeFiles/pattern_explorer.dir/pattern_explorer.cpp.o.d"
  "pattern_explorer"
  "pattern_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
