# Empty dependencies file for pastri_qc.
# This may be replaced when dependencies are built.
