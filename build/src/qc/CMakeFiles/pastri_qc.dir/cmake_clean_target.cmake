file(REMOVE_RECURSE
  "libpastri_qc.a"
)
