file(REMOVE_RECURSE
  "CMakeFiles/pastri_qc.dir/basis.cpp.o"
  "CMakeFiles/pastri_qc.dir/basis.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/boys.cpp.o"
  "CMakeFiles/pastri_qc.dir/boys.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/cartesian.cpp.o"
  "CMakeFiles/pastri_qc.dir/cartesian.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/compressed_eri_store.cpp.o"
  "CMakeFiles/pastri_qc.dir/compressed_eri_store.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/dataset.cpp.o"
  "CMakeFiles/pastri_qc.dir/dataset.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/direct_scf.cpp.o"
  "CMakeFiles/pastri_qc.dir/direct_scf.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/eri_engine.cpp.o"
  "CMakeFiles/pastri_qc.dir/eri_engine.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/gamess_text.cpp.o"
  "CMakeFiles/pastri_qc.dir/gamess_text.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/linalg.cpp.o"
  "CMakeFiles/pastri_qc.dir/linalg.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/md_eri.cpp.o"
  "CMakeFiles/pastri_qc.dir/md_eri.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/molecule.cpp.o"
  "CMakeFiles/pastri_qc.dir/molecule.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/mp2.cpp.o"
  "CMakeFiles/pastri_qc.dir/mp2.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/one_electron.cpp.o"
  "CMakeFiles/pastri_qc.dir/one_electron.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/scf.cpp.o"
  "CMakeFiles/pastri_qc.dir/scf.cpp.o.d"
  "CMakeFiles/pastri_qc.dir/sto3g.cpp.o"
  "CMakeFiles/pastri_qc.dir/sto3g.cpp.o.d"
  "libpastri_qc.a"
  "libpastri_qc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastri_qc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
