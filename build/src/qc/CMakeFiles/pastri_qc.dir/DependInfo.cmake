
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qc/basis.cpp" "src/qc/CMakeFiles/pastri_qc.dir/basis.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/basis.cpp.o.d"
  "/root/repo/src/qc/boys.cpp" "src/qc/CMakeFiles/pastri_qc.dir/boys.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/boys.cpp.o.d"
  "/root/repo/src/qc/cartesian.cpp" "src/qc/CMakeFiles/pastri_qc.dir/cartesian.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/cartesian.cpp.o.d"
  "/root/repo/src/qc/compressed_eri_store.cpp" "src/qc/CMakeFiles/pastri_qc.dir/compressed_eri_store.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/compressed_eri_store.cpp.o.d"
  "/root/repo/src/qc/dataset.cpp" "src/qc/CMakeFiles/pastri_qc.dir/dataset.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/dataset.cpp.o.d"
  "/root/repo/src/qc/direct_scf.cpp" "src/qc/CMakeFiles/pastri_qc.dir/direct_scf.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/direct_scf.cpp.o.d"
  "/root/repo/src/qc/eri_engine.cpp" "src/qc/CMakeFiles/pastri_qc.dir/eri_engine.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/eri_engine.cpp.o.d"
  "/root/repo/src/qc/gamess_text.cpp" "src/qc/CMakeFiles/pastri_qc.dir/gamess_text.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/gamess_text.cpp.o.d"
  "/root/repo/src/qc/linalg.cpp" "src/qc/CMakeFiles/pastri_qc.dir/linalg.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/linalg.cpp.o.d"
  "/root/repo/src/qc/md_eri.cpp" "src/qc/CMakeFiles/pastri_qc.dir/md_eri.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/md_eri.cpp.o.d"
  "/root/repo/src/qc/molecule.cpp" "src/qc/CMakeFiles/pastri_qc.dir/molecule.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/molecule.cpp.o.d"
  "/root/repo/src/qc/mp2.cpp" "src/qc/CMakeFiles/pastri_qc.dir/mp2.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/mp2.cpp.o.d"
  "/root/repo/src/qc/one_electron.cpp" "src/qc/CMakeFiles/pastri_qc.dir/one_electron.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/one_electron.cpp.o.d"
  "/root/repo/src/qc/scf.cpp" "src/qc/CMakeFiles/pastri_qc.dir/scf.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/scf.cpp.o.d"
  "/root/repo/src/qc/sto3g.cpp" "src/qc/CMakeFiles/pastri_qc.dir/sto3g.cpp.o" "gcc" "src/qc/CMakeFiles/pastri_qc.dir/sto3g.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pastri_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
