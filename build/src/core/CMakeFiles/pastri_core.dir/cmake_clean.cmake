file(REMOVE_RECURSE
  "CMakeFiles/pastri_core.dir/compressor.cpp.o"
  "CMakeFiles/pastri_core.dir/compressor.cpp.o.d"
  "CMakeFiles/pastri_core.dir/ecq_tree.cpp.o"
  "CMakeFiles/pastri_core.dir/ecq_tree.cpp.o.d"
  "CMakeFiles/pastri_core.dir/pastri_capi.cpp.o"
  "CMakeFiles/pastri_core.dir/pastri_capi.cpp.o.d"
  "CMakeFiles/pastri_core.dir/period_detect.cpp.o"
  "CMakeFiles/pastri_core.dir/period_detect.cpp.o.d"
  "CMakeFiles/pastri_core.dir/quantize.cpp.o"
  "CMakeFiles/pastri_core.dir/quantize.cpp.o.d"
  "CMakeFiles/pastri_core.dir/scaling.cpp.o"
  "CMakeFiles/pastri_core.dir/scaling.cpp.o.d"
  "CMakeFiles/pastri_core.dir/stream.cpp.o"
  "CMakeFiles/pastri_core.dir/stream.cpp.o.d"
  "libpastri_core.a"
  "libpastri_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastri_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
