file(REMOVE_RECURSE
  "libpastri_core.a"
)
