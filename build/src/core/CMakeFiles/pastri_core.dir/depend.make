# Empty dependencies file for pastri_core.
# This may be replaced when dependencies are built.
