
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compressor.cpp" "src/core/CMakeFiles/pastri_core.dir/compressor.cpp.o" "gcc" "src/core/CMakeFiles/pastri_core.dir/compressor.cpp.o.d"
  "/root/repo/src/core/ecq_tree.cpp" "src/core/CMakeFiles/pastri_core.dir/ecq_tree.cpp.o" "gcc" "src/core/CMakeFiles/pastri_core.dir/ecq_tree.cpp.o.d"
  "/root/repo/src/core/pastri_capi.cpp" "src/core/CMakeFiles/pastri_core.dir/pastri_capi.cpp.o" "gcc" "src/core/CMakeFiles/pastri_core.dir/pastri_capi.cpp.o.d"
  "/root/repo/src/core/period_detect.cpp" "src/core/CMakeFiles/pastri_core.dir/period_detect.cpp.o" "gcc" "src/core/CMakeFiles/pastri_core.dir/period_detect.cpp.o.d"
  "/root/repo/src/core/quantize.cpp" "src/core/CMakeFiles/pastri_core.dir/quantize.cpp.o" "gcc" "src/core/CMakeFiles/pastri_core.dir/quantize.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/core/CMakeFiles/pastri_core.dir/scaling.cpp.o" "gcc" "src/core/CMakeFiles/pastri_core.dir/scaling.cpp.o.d"
  "/root/repo/src/core/stream.cpp" "src/core/CMakeFiles/pastri_core.dir/stream.cpp.o" "gcc" "src/core/CMakeFiles/pastri_core.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
