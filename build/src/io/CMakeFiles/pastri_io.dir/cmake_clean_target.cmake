file(REMOVE_RECURSE
  "libpastri_io.a"
)
