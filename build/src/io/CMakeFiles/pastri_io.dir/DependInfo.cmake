
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/compressed_file.cpp" "src/io/CMakeFiles/pastri_io.dir/compressed_file.cpp.o" "gcc" "src/io/CMakeFiles/pastri_io.dir/compressed_file.cpp.o.d"
  "/root/repo/src/io/file_per_process.cpp" "src/io/CMakeFiles/pastri_io.dir/file_per_process.cpp.o" "gcc" "src/io/CMakeFiles/pastri_io.dir/file_per_process.cpp.o.d"
  "/root/repo/src/io/pfs_model.cpp" "src/io/CMakeFiles/pastri_io.dir/pfs_model.cpp.o" "gcc" "src/io/CMakeFiles/pastri_io.dir/pfs_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pastri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/pastri_qc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
