# Empty dependencies file for pastri_io.
# This may be replaced when dependencies are built.
