file(REMOVE_RECURSE
  "CMakeFiles/pastri_io.dir/compressed_file.cpp.o"
  "CMakeFiles/pastri_io.dir/compressed_file.cpp.o.d"
  "CMakeFiles/pastri_io.dir/file_per_process.cpp.o"
  "CMakeFiles/pastri_io.dir/file_per_process.cpp.o.d"
  "CMakeFiles/pastri_io.dir/pfs_model.cpp.o"
  "CMakeFiles/pastri_io.dir/pfs_model.cpp.o.d"
  "libpastri_io.a"
  "libpastri_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastri_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
