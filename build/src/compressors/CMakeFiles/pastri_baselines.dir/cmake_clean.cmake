file(REMOVE_RECURSE
  "CMakeFiles/pastri_baselines.dir/compressor_iface.cpp.o"
  "CMakeFiles/pastri_baselines.dir/compressor_iface.cpp.o.d"
  "CMakeFiles/pastri_baselines.dir/huffman.cpp.o"
  "CMakeFiles/pastri_baselines.dir/huffman.cpp.o.d"
  "CMakeFiles/pastri_baselines.dir/lossless/fpc.cpp.o"
  "CMakeFiles/pastri_baselines.dir/lossless/fpc.cpp.o.d"
  "CMakeFiles/pastri_baselines.dir/lossless/lzss.cpp.o"
  "CMakeFiles/pastri_baselines.dir/lossless/lzss.cpp.o.d"
  "CMakeFiles/pastri_baselines.dir/rpp/rpp.cpp.o"
  "CMakeFiles/pastri_baselines.dir/rpp/rpp.cpp.o.d"
  "CMakeFiles/pastri_baselines.dir/sz/sz.cpp.o"
  "CMakeFiles/pastri_baselines.dir/sz/sz.cpp.o.d"
  "CMakeFiles/pastri_baselines.dir/zfp/zfp.cpp.o"
  "CMakeFiles/pastri_baselines.dir/zfp/zfp.cpp.o.d"
  "libpastri_baselines.a"
  "libpastri_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastri_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
