
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compressors/compressor_iface.cpp" "src/compressors/CMakeFiles/pastri_baselines.dir/compressor_iface.cpp.o" "gcc" "src/compressors/CMakeFiles/pastri_baselines.dir/compressor_iface.cpp.o.d"
  "/root/repo/src/compressors/huffman.cpp" "src/compressors/CMakeFiles/pastri_baselines.dir/huffman.cpp.o" "gcc" "src/compressors/CMakeFiles/pastri_baselines.dir/huffman.cpp.o.d"
  "/root/repo/src/compressors/lossless/fpc.cpp" "src/compressors/CMakeFiles/pastri_baselines.dir/lossless/fpc.cpp.o" "gcc" "src/compressors/CMakeFiles/pastri_baselines.dir/lossless/fpc.cpp.o.d"
  "/root/repo/src/compressors/lossless/lzss.cpp" "src/compressors/CMakeFiles/pastri_baselines.dir/lossless/lzss.cpp.o" "gcc" "src/compressors/CMakeFiles/pastri_baselines.dir/lossless/lzss.cpp.o.d"
  "/root/repo/src/compressors/rpp/rpp.cpp" "src/compressors/CMakeFiles/pastri_baselines.dir/rpp/rpp.cpp.o" "gcc" "src/compressors/CMakeFiles/pastri_baselines.dir/rpp/rpp.cpp.o.d"
  "/root/repo/src/compressors/sz/sz.cpp" "src/compressors/CMakeFiles/pastri_baselines.dir/sz/sz.cpp.o" "gcc" "src/compressors/CMakeFiles/pastri_baselines.dir/sz/sz.cpp.o.d"
  "/root/repo/src/compressors/zfp/zfp.cpp" "src/compressors/CMakeFiles/pastri_baselines.dir/zfp/zfp.cpp.o" "gcc" "src/compressors/CMakeFiles/pastri_baselines.dir/zfp/zfp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pastri_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
