file(REMOVE_RECURSE
  "libpastri_baselines.a"
)
