# Empty compiler generated dependencies file for pastri_baselines.
# This may be replaced when dependencies are built.
