# Empty dependencies file for pastri_zchecker.
# This may be replaced when dependencies are built.
