file(REMOVE_RECURSE
  "CMakeFiles/pastri_zchecker.dir/dataset_stats.cpp.o"
  "CMakeFiles/pastri_zchecker.dir/dataset_stats.cpp.o.d"
  "CMakeFiles/pastri_zchecker.dir/metrics.cpp.o"
  "CMakeFiles/pastri_zchecker.dir/metrics.cpp.o.d"
  "libpastri_zchecker.a"
  "libpastri_zchecker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastri_zchecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
