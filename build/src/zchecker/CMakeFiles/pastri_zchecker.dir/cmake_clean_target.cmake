file(REMOVE_RECURSE
  "libpastri_zchecker.a"
)
