file(REMOVE_RECURSE
  "CMakeFiles/test_lzss.dir/test_lzss.cpp.o"
  "CMakeFiles/test_lzss.dir/test_lzss.cpp.o.d"
  "test_lzss"
  "test_lzss.pdb"
  "test_lzss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lzss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
