# Empty compiler generated dependencies file for test_lzss.
# This may be replaced when dependencies are built.
