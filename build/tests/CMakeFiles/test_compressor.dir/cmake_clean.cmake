file(REMOVE_RECURSE
  "CMakeFiles/test_compressor.dir/test_compressor.cpp.o"
  "CMakeFiles/test_compressor.dir/test_compressor.cpp.o.d"
  "test_compressor"
  "test_compressor.pdb"
  "test_compressor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
