# Empty compiler generated dependencies file for test_compressor.
# This may be replaced when dependencies are built.
