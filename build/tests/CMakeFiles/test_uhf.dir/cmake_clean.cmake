file(REMOVE_RECURSE
  "CMakeFiles/test_uhf.dir/test_uhf.cpp.o"
  "CMakeFiles/test_uhf.dir/test_uhf.cpp.o.d"
  "test_uhf"
  "test_uhf.pdb"
  "test_uhf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uhf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
