# Empty dependencies file for test_uhf.
# This may be replaced when dependencies are built.
