# Empty compiler generated dependencies file for test_compressed_eri_store.
# This may be replaced when dependencies are built.
