file(REMOVE_RECURSE
  "CMakeFiles/test_compressed_eri_store.dir/test_compressed_eri_store.cpp.o"
  "CMakeFiles/test_compressed_eri_store.dir/test_compressed_eri_store.cpp.o.d"
  "test_compressed_eri_store"
  "test_compressed_eri_store.pdb"
  "test_compressed_eri_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compressed_eri_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
