# Empty compiler generated dependencies file for test_rpp_and_compressed_file.
# This may be replaced when dependencies are built.
