file(REMOVE_RECURSE
  "CMakeFiles/test_rpp_and_compressed_file.dir/test_rpp_and_compressed_file.cpp.o"
  "CMakeFiles/test_rpp_and_compressed_file.dir/test_rpp_and_compressed_file.cpp.o.d"
  "test_rpp_and_compressed_file"
  "test_rpp_and_compressed_file.pdb"
  "test_rpp_and_compressed_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpp_and_compressed_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
