file(REMOVE_RECURSE
  "CMakeFiles/test_boys.dir/test_boys.cpp.o"
  "CMakeFiles/test_boys.dir/test_boys.cpp.o.d"
  "test_boys"
  "test_boys.pdb"
  "test_boys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
