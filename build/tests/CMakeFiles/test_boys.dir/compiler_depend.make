# Empty compiler generated dependencies file for test_boys.
# This may be replaced when dependencies are built.
