file(REMOVE_RECURSE
  "CMakeFiles/test_ecq_tree.dir/test_ecq_tree.cpp.o"
  "CMakeFiles/test_ecq_tree.dir/test_ecq_tree.cpp.o.d"
  "test_ecq_tree"
  "test_ecq_tree.pdb"
  "test_ecq_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecq_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
