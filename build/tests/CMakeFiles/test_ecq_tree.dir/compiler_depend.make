# Empty compiler generated dependencies file for test_ecq_tree.
# This may be replaced when dependencies are built.
