file(REMOVE_RECURSE
  "CMakeFiles/test_sz.dir/test_sz.cpp.o"
  "CMakeFiles/test_sz.dir/test_sz.cpp.o.d"
  "test_sz"
  "test_sz.pdb"
  "test_sz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
