# Empty dependencies file for test_sz.
# This may be replaced when dependencies are built.
