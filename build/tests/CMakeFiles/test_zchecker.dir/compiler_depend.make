# Empty compiler generated dependencies file for test_zchecker.
# This may be replaced when dependencies are built.
