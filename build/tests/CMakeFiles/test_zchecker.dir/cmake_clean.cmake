file(REMOVE_RECURSE
  "CMakeFiles/test_zchecker.dir/test_zchecker.cpp.o"
  "CMakeFiles/test_zchecker.dir/test_zchecker.cpp.o.d"
  "test_zchecker"
  "test_zchecker.pdb"
  "test_zchecker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zchecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
