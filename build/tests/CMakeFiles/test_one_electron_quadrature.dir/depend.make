# Empty dependencies file for test_one_electron_quadrature.
# This may be replaced when dependencies are built.
