file(REMOVE_RECURSE
  "CMakeFiles/test_one_electron_quadrature.dir/test_one_electron_quadrature.cpp.o"
  "CMakeFiles/test_one_electron_quadrature.dir/test_one_electron_quadrature.cpp.o.d"
  "test_one_electron_quadrature"
  "test_one_electron_quadrature.pdb"
  "test_one_electron_quadrature[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_one_electron_quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
