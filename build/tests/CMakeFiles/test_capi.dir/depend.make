# Empty dependencies file for test_capi.
# This may be replaced when dependencies are built.
