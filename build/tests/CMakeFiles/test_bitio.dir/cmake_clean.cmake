file(REMOVE_RECURSE
  "CMakeFiles/test_bitio.dir/test_bitio.cpp.o"
  "CMakeFiles/test_bitio.dir/test_bitio.cpp.o.d"
  "test_bitio"
  "test_bitio.pdb"
  "test_bitio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
