# Empty compiler generated dependencies file for test_bitio.
# This may be replaced when dependencies are built.
