file(REMOVE_RECURSE
  "CMakeFiles/test_gamess_text.dir/test_gamess_text.cpp.o"
  "CMakeFiles/test_gamess_text.dir/test_gamess_text.cpp.o.d"
  "test_gamess_text"
  "test_gamess_text.pdb"
  "test_gamess_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gamess_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
