# Empty dependencies file for test_gamess_text.
# This may be replaced when dependencies are built.
