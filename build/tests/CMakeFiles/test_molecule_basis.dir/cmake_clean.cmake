file(REMOVE_RECURSE
  "CMakeFiles/test_molecule_basis.dir/test_molecule_basis.cpp.o"
  "CMakeFiles/test_molecule_basis.dir/test_molecule_basis.cpp.o.d"
  "test_molecule_basis"
  "test_molecule_basis.pdb"
  "test_molecule_basis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_molecule_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
