# Empty compiler generated dependencies file for test_molecule_basis.
# This may be replaced when dependencies are built.
