# Empty compiler generated dependencies file for test_fpc.
# This may be replaced when dependencies are built.
