file(REMOVE_RECURSE
  "CMakeFiles/test_fpc.dir/test_fpc.cpp.o"
  "CMakeFiles/test_fpc.dir/test_fpc.cpp.o.d"
  "test_fpc"
  "test_fpc.pdb"
  "test_fpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
