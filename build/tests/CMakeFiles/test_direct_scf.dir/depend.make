# Empty dependencies file for test_direct_scf.
# This may be replaced when dependencies are built.
