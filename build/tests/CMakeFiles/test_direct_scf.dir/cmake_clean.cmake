file(REMOVE_RECURSE
  "CMakeFiles/test_direct_scf.dir/test_direct_scf.cpp.o"
  "CMakeFiles/test_direct_scf.dir/test_direct_scf.cpp.o.d"
  "test_direct_scf"
  "test_direct_scf.pdb"
  "test_direct_scf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_direct_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
