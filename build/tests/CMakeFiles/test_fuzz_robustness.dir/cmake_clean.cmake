file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_robustness.dir/test_fuzz_robustness.cpp.o"
  "CMakeFiles/test_fuzz_robustness.dir/test_fuzz_robustness.cpp.o.d"
  "test_fuzz_robustness"
  "test_fuzz_robustness.pdb"
  "test_fuzz_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
