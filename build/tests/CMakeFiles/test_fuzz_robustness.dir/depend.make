# Empty dependencies file for test_fuzz_robustness.
# This may be replaced when dependencies are built.
