file(REMOVE_RECURSE
  "CMakeFiles/test_period_detect.dir/test_period_detect.cpp.o"
  "CMakeFiles/test_period_detect.dir/test_period_detect.cpp.o.d"
  "test_period_detect"
  "test_period_detect.pdb"
  "test_period_detect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_period_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
