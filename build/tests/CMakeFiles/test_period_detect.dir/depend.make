# Empty dependencies file for test_period_detect.
# This may be replaced when dependencies are built.
