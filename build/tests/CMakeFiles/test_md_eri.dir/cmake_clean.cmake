file(REMOVE_RECURSE
  "CMakeFiles/test_md_eri.dir/test_md_eri.cpp.o"
  "CMakeFiles/test_md_eri.dir/test_md_eri.cpp.o.d"
  "test_md_eri"
  "test_md_eri.pdb"
  "test_md_eri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_eri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
