# Empty dependencies file for test_md_eri.
# This may be replaced when dependencies are built.
