# Empty dependencies file for test_format_stability.
# This may be replaced when dependencies are built.
