file(REMOVE_RECURSE
  "CMakeFiles/test_format_stability.dir/test_format_stability.cpp.o"
  "CMakeFiles/test_format_stability.dir/test_format_stability.cpp.o.d"
  "test_format_stability"
  "test_format_stability.pdb"
  "test_format_stability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_format_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
