file(REMOVE_RECURSE
  "CMakeFiles/test_eri_engine.dir/test_eri_engine.cpp.o"
  "CMakeFiles/test_eri_engine.dir/test_eri_engine.cpp.o.d"
  "test_eri_engine"
  "test_eri_engine.pdb"
  "test_eri_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eri_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
