# Empty compiler generated dependencies file for test_eri_engine.
# This may be replaced when dependencies are built.
