# Empty compiler generated dependencies file for test_cartesian.
# This may be replaced when dependencies are built.
