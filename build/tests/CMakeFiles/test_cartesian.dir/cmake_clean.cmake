file(REMOVE_RECURSE
  "CMakeFiles/test_cartesian.dir/test_cartesian.cpp.o"
  "CMakeFiles/test_cartesian.dir/test_cartesian.cpp.o.d"
  "test_cartesian"
  "test_cartesian.pdb"
  "test_cartesian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cartesian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
