
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/test_linalg.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/test_linalg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pastri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compressors/CMakeFiles/pastri_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/pastri_qc.dir/DependInfo.cmake"
  "/root/repo/build/src/zchecker/CMakeFiles/pastri_zchecker.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pastri_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
