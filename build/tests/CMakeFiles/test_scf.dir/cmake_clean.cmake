file(REMOVE_RECURSE
  "CMakeFiles/test_scf.dir/test_scf.cpp.o"
  "CMakeFiles/test_scf.dir/test_scf.cpp.o.d"
  "test_scf"
  "test_scf.pdb"
  "test_scf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
