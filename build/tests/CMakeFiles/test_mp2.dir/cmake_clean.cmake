file(REMOVE_RECURSE
  "CMakeFiles/test_mp2.dir/test_mp2.cpp.o"
  "CMakeFiles/test_mp2.dir/test_mp2.cpp.o.d"
  "test_mp2"
  "test_mp2.pdb"
  "test_mp2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
