# Empty compiler generated dependencies file for test_mp2.
# This may be replaced when dependencies are built.
