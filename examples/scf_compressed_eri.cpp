// scf_compressed_eri - The paper's end-to-end use case (Fig. 11):
// run a Hartree-Fock calculation where the two-electron integrals are
// stored through PaSTRI instead of being kept exact, and show how the
// SCF energy responds to the error bound.
//
// With the GAMESS-typical EB = 1e-10 the converged energy is unchanged
// to ~1e-9 Hartree -- far below chemical accuracy -- while the ERI
// storage shrinks by an order of magnitude.
//
//   $ scf_compressed_eri [h2|he|h2o]
#include <cmath>
#include <cstdio>
#include <string>

#include "core/pastri.h"
#include "qc/compressed_eri_store.h"
#include "qc/mp2.h"
#include "qc/one_electron.h"
#include "qc/scf.h"
#include "qc/sto3g.h"

namespace {

pastri::qc::Molecule make_system(const std::string& name) {
  using pastri::qc::Molecule;
  Molecule m;
  if (name == "h2") {
    m.name = "H2";
    m.atoms = {{"H", 1, {0, 0, 0}}, {"H", 1, {1.4, 0, 0}}};
  } else if (name == "he") {
    m.name = "He";
    m.atoms = {{"He", 2, {0, 0, 0}}};
  } else {
    m.name = "H2O";
    m.atoms = {{"O", 8, {0, 0, 0}},
               {"H", 1, {0, 1.4305, 1.1093}},
               {"H", 1, {0, -1.4305, 1.1093}}};
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pastri;
  const std::string which = argc > 1 ? argv[1] : "h2o";
  const qc::Molecule mol = make_system(which);
  const qc::BasisSet basis = qc::make_sto3g_basis(mol);
  const std::size_t n = basis.num_basis_functions();
  std::printf("system: %s, %zu basis functions, %zu ERIs\n\n",
              mol.name.c_str(), n, n * n * n * n);

  // Reference calculation with exact integrals.
  const qc::EriTensor exact = qc::compute_eri_tensor(basis);
  const qc::ScfResult ref = qc::run_rhf(mol, basis, exact);
  const qc::Mp2Result ref_mp2 = qc::run_mp2(mol, basis, exact, ref);
  std::printf("exact ERIs      : E(RHF) = %+.9f Ha (%d iterations), "
              "E(MP2) = %+.9f Ha\n",
              ref.total_energy, ref.iterations, ref_mp2.total_energy);

  // PaSTRI-compressed integrals at several bounds, held in the paper's
  // Fig. 11 infrastructure: one stream per shell-quartet configuration
  // class, decompressed whenever the tensor is needed.  The store
  // compresses on the fly -- each quartet block goes from the integral
  // engine straight into the class's StreamWriter, so building it never
  // allocates a dense per-class tensor.
  std::printf("\n%-10s %10s %16s %12s %12s\n", "EB", "ratio",
              "E_RHF (Ha)", "|dE_RHF|", "|dE_MP2|");
  for (double eb : {1e-6, 1e-8, 1e-10, 1e-12}) {
    Params p;
    p.error_bound = eb;
    const qc::CompressedEriStore store(basis, p);
    const qc::EriTensor restored = store.materialize();
    const qc::ScfResult res = qc::run_rhf(mol, basis, restored);
    const qc::Mp2Result mp2 = qc::run_mp2(mol, basis, restored, res);
    std::printf("%-10.0e %10.2f %+16.9f %12.3e %12.3e%s\n", eb,
                store.ratio(), res.total_energy,
                std::abs(res.total_energy - ref.total_energy),
                std::abs(mp2.total_energy - ref_mp2.total_energy),
                res.converged ? "" : "  (NOT CONVERGED)");
  }
  std::printf("\nAt the paper's EB = 1e-10 the energy error is "
              "negligible against chemical accuracy (1.6e-3 Ha), which "
              "is why lossy ERI storage is safe for SCF workloads.\n");
  return 0;
}
