// io_pipeline - Out-of-core dump/load demo: stream shell blocks from the
// integral engine straight into a sharded compressed file (never holding
// both raw and compressed copies), then stream them back -- the
// file-per-process workflow of the paper's Fig. 10 on a single node.
//
//   $ io_pipeline [shards] [blocks]
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/stream.h"
#include "io/compressed_file.h"
#include "io/file_per_process.h"
#include "qc/eri_engine.h"
#include "zchecker/metrics.h"

int main(int argc, char** argv) {
  using namespace pastri;
  const int shards = argc > 1 ? std::stoi(argv[1]) : 4;
  const std::size_t blocks = argc > 2 ? std::stoul(argv[2]) : 400;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "pastri_io_pipeline")
          .string();
  std::filesystem::create_directories(dir);

  // Produce the dataset (stands in for the GAMESS integral program).
  qc::DatasetOptions opt;
  opt.config = qc::parse_config("(dd|dd)");
  opt.max_blocks = blocks;
  const qc::EriDataset ds =
      qc::generate_eri_dataset(qc::make_glutamine(), opt);
  std::printf("dataset: %s, %zu blocks, %.2f MB\n", ds.label.c_str(),
              ds.num_blocks, ds.size_bytes() / 1e6);

  // Dump: shard-parallel compressed write.
  Params params;
  const std::size_t compressed_bytes =
      io::write_compressed_dataset(ds, params, shards, dir, "eri");
  std::printf("dump   : %d shards, %zu bytes (ratio %.2fx)\n", shards,
              compressed_bytes,
              static_cast<double>(ds.size_bytes()) / compressed_bytes);

  // Load it back and verify the bound.
  const qc::EriDataset restored = io::read_compressed_dataset(dir, "eri");
  const auto err = zchecker::compare(ds.values, restored.values);
  std::printf("load   : %zu blocks, max |error| = %.3e (bound %.0e)\n",
              restored.num_blocks, err.max_abs_error, params.error_bound);

  // Bonus: pure streaming path -- compress block-at-a-time without the
  // dataset ever existing as one raw array on the writer side.
  StreamCompressor sc(
      BlockSpec{ds.shape.num_sub_blocks(), ds.shape.sub_block_size()},
      params);
  for (std::size_t b = 0; b < ds.num_blocks; ++b) {
    sc.append_block(ds.block(b));
  }
  const auto stream = sc.finish();
  StreamDecompressor sd(stream);
  std::vector<double> block(ds.shape.block_size());
  std::size_t n = 0;
  double max_err = 0.0;
  while (sd.next_block(block)) {
    const auto orig = ds.block(n);
    for (std::size_t i = 0; i < block.size(); ++i) {
      max_err = std::max(max_err, std::abs(block[i] - orig[i]));
    }
    ++n;
  }
  std::printf("stream : %zu blocks round-tripped, max |error| = %.3e\n",
              n, max_err);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return (err.max_abs_error <= params.error_bound &&
          max_err <= params.error_bound)
             ? 0
             : 1;
}
