// eri_dataset_tool - Generate and inspect ERI datasets, the GAMESS-side
// half of the paper's pipeline.
//
//   generate a dataset:
//     $ eri_dataset_tool generate --molecule alanine --config "(dd|dd)" \
//           --blocks 1000 --out alanine_dd.eri
//   inspect one:
//     $ eri_dataset_tool info alanine_dd.eri
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "qc/eri_engine.h"
#include "qc/gamess_text.h"
#include "zchecker/dataset_stats.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  eri_dataset_tool generate [--molecule NAME] [--config "
               "CFG] [--blocks N]\n"
               "                            [--seed S] [--contraction K] "
               "[--out PATH]\n"
               "  eri_dataset_tool info PATH\n"
               "  eri_dataset_tool convert IN OUT   (binary <-> text "
               "by extension: .eri binary, .txt text)\n"
               "molecules: benzene, glutamine, alanine (tri-alanine)\n"
               "configs:   e.g. \"(dd|dd)\", \"(ff|ff)\", \"(pd|dp)\"\n");
  return 2;
}

int cmd_generate(int argc, char** argv) {
  std::string molecule = "benzene";
  std::string config = "(dd|dd)";
  std::string out = "dataset.eri";
  pastri::qc::DatasetOptions opt;
  opt.max_blocks = 500;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--molecule" && next()) molecule = argv[i];
    else if (a == "--config" && next()) config = argv[i];
    else if (a == "--blocks" && next()) opt.max_blocks = std::stoul(argv[i]);
    else if (a == "--seed" && next()) opt.seed = std::stoull(argv[i]);
    else if (a == "--contraction" && next())
      opt.contraction = std::stoi(argv[i]);
    else if (a == "--out" && next()) out = argv[i];
    else return usage();
  }
  opt.config = pastri::qc::parse_config(config);
  const auto mol = pastri::qc::make_molecule(molecule);
  std::printf("generating %s %s (%zu blocks max)...\n", molecule.c_str(),
              config.c_str(), opt.max_blocks);
  const auto ds = pastri::qc::generate_eri_dataset(mol, opt);
  pastri::qc::save_dataset(ds, out);
  std::printf("wrote %s: %zu blocks, %.2f MB\n", out.c_str(),
              ds.num_blocks, ds.size_bytes() / 1e6);
  return 0;
}

int cmd_info(const char* path) {
  const auto ds = pastri::qc::load_dataset(path);
  std::printf("label      : %s\n", ds.label.c_str());
  std::printf("config     : %s\n", ds.shape.config_name().c_str());
  std::printf("blocks     : %zu of %zu points (%zu sub-blocks x %zu)\n",
              ds.num_blocks, ds.shape.block_size(),
              ds.shape.num_sub_blocks(), ds.shape.sub_block_size());
  std::printf("size       : %.2f MB\n", ds.size_bytes() / 1e6);
  double mx = 0.0, mn = 1e300;
  std::size_t zero_blocks = 0;
  for (std::size_t b = 0; b < ds.num_blocks; ++b) {
    double bmax = 0.0;
    for (double v : ds.block(b)) bmax = std::max(bmax, std::abs(v));
    mx = std::max(mx, bmax);
    if (bmax > 0) mn = std::min(mn, bmax);
    zero_blocks += (bmax == 0.0);
  }
  std::printf("block |max|: %.3e .. %.3e\n", mn, mx);
  std::printf("screened   : %zu all-zero blocks (%.1f%%)\n", zero_blocks,
              100.0 * zero_blocks / std::max<std::size_t>(1, ds.num_blocks));
  pastri::zchecker::print_dataset_stats(
      pastri::zchecker::analyze_dataset(ds));
  return 0;
}

}  // namespace

bool has_suffix(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

int cmd_convert(const char* in, const char* out) {
  const pastri::qc::EriDataset ds =
      has_suffix(in, ".txt") ? pastri::qc::load_gamess_text(in)
                             : pastri::qc::load_dataset(in);
  if (has_suffix(out, ".txt")) {
    pastri::qc::save_gamess_text(ds, out);
  } else {
    pastri::qc::save_dataset(ds, out);
  }
  std::printf("converted %s -> %s (%zu blocks)\n", in, out,
              ds.num_blocks);
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
    if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
    if (cmd == "convert" && argc >= 4) return cmd_convert(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
