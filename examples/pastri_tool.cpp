// pastri_tool - Command-line compressor, the analogue of the PaSTRI mode
// shipped in the SZ package: compresses/decompresses .eri dataset files.
//
//   $ pastri_tool compress   in.eri out.pastri [--eb 1e-10]
//                            [--metric ER|FR|AR|AAR|IS]
//                            [--tree 1..5] [--no-sparse]
//                            [--dict on|off|auto]
//                            [--chunk BYTES] [--threads N]
//   $ pastri_tool decompress in.pastri out.eri [--chunk BYTES]
//                            [--threads N]
//   $ pastri_tool verify     in.eri in.pastri
//   $ pastri_tool extract    in.pastri FIRST [COUNT]   # seek, don't scan
//   $ pastri_tool inspect    in.pastri                 # index + dict stats
//
// compress/decompress stream through fixed-size chunks (default 4 MiB):
// peak memory is O(chunk), independent of the dataset size, and "-"
// works as IN or OUT for stdin/stdout pipelines --
//
//   $ generator | pastri_tool compress - - > eri.pastri
//
// (the .eri header always carries the block count, so compressing to a
// pipe needs no seeking).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/pastri.h"
#include "core/pastri_capi.h"
#include "core/simd/simd.h"
#include "core/stream.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "qc/eri_engine.h"
#include "qc/eri_pipeline.h"
#include "qc/molecule.h"
#include "serve/client.h"

namespace {

using namespace pastri;

constexpr std::size_t kDefaultChunkBytes = std::size_t{4} << 20;

/// --metrics[=json|prom] report, printed to stderr on exit so it can
/// never corrupt a payload going to stdout.
enum class MetricsMode { Off, Json, Prom };
MetricsMode g_metrics_mode = MetricsMode::Off;

/// Set by cmd_compress so the json report can pair the run's Stats with
/// the metrics snapshot (obs::export_run_json).
Stats g_compress_stats;
bool g_have_compress_stats = false;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pastri_tool compress   IN.eri OUT.pastri [--eb E] [--metric M]"
      " [--tree N] [--no-sparse] [--dict on|off|auto] [--chunk BYTES]"
      " [--threads N]\n"
      "  pastri_tool decompress IN.pastri OUT.eri [--chunk BYTES]"
      " [--threads N]\n"
      "  pastri_tool verify     IN.eri IN.pastri\n"
      "  pastri_tool extract    IN.pastri FIRST [COUNT]\n"
      "  pastri_tool inspect    IN.pastri\n"
      "  pastri_tool generate   MOLECULE CONFIG DIR BASENAME"
      " [--shards N] [--resume] [--sequential] [--producers N] [--eb E]"
      " [--dict on|off|auto] [--blocks N] [--batch N] [--seed S]\n"
      "  pastri_tool serve-client HOST:PORT ping\n"
      "  pastri_tool serve-client HOST:PORT get-block STORE FIRST [COUNT]\n"
      "  pastri_tool serve-client HOST:PORT stats STORE\n"
      "  pastri_tool serve-client HOST:PORT put-stream IN.eri OUT.pastri"
      " [--eb E]\n"
      "\n"
      "every subcommand also accepts --metrics[=json|prom]: dump the\n"
      "telemetry snapshot (counters, gauges, latency histograms) to\n"
      "stderr on exit.\n"
      "\n"
      "compress/decompress stream via fixed-size chunks (peak memory\n"
      "O(chunk)); \"-\" as IN or OUT means stdin/stdout.\n");
  return 2;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open " + path);
  const auto size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  return data;
}

DictMode parse_dict_mode(const std::string& s) {
  if (s == "on") return DictMode::On;
  if (s == "off") return DictMode::Off;
  if (s == "auto") return DictMode::Auto;
  throw std::invalid_argument("--dict takes on|off|auto, got: " + s);
}

ScalingMetric parse_metric(const std::string& s) {
  for (ScalingMetric m : {ScalingMetric::FR, ScalingMetric::ER,
                          ScalingMetric::AR, ScalingMetric::AAR,
                          ScalingMetric::IS}) {
    if (s == scaling_metric_name(m)) return m;
  }
  throw std::invalid_argument("unknown metric: " + s);
}

/// File-or-stdio stream selection ("-" = the standard stream).
std::istream& open_input(const std::string& path, std::ifstream& file) {
  if (path == "-") return std::cin;
  file.open(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open " + path);
  return file;
}

std::ostream& open_output(const std::string& path, std::ofstream& file) {
  if (path == "-") return std::cout;
  file.open(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("cannot open " + path);
  return file;
}

// The pastri_tool container: "TSCP" magic, label, block shape, then one
// PaSTRI stream.  All fields little-endian, all byte-aligned.
constexpr std::uint32_t kToolMagic = 0x50435354;  // "TSCP"

void write_tool_header(std::ostream& os, const std::string& label,
                       const qc::BlockShape& shape) {
  os.write(reinterpret_cast<const char*>(&kToolMagic), 4);
  const std::uint32_t label_len = static_cast<std::uint32_t>(label.size());
  os.write(reinterpret_cast<const char*>(&label_len), 4);
  os.write(label.data(), label_len);
  for (auto n : shape.n) {
    os.write(reinterpret_cast<const char*>(&n), 2);
  }
  if (!os) throw std::runtime_error("container header write failed");
}

void read_tool_header(std::istream& is, std::string& label,
                      qc::BlockShape& shape) {
  std::uint32_t magic = 0, label_len = 0;
  is.read(reinterpret_cast<char*>(&magic), 4);
  if (!is || magic != kToolMagic) {
    throw std::runtime_error("not a pastri_tool container");
  }
  is.read(reinterpret_cast<char*>(&label_len), 4);
  if (!is || label_len > (1u << 20)) {
    throw std::runtime_error("corrupt label");
  }
  label.resize(label_len);
  is.read(label.data(), label_len);
  for (auto& n : shape.n) {
    is.read(reinterpret_cast<char*>(&n), 2);
  }
  if (!is) throw std::runtime_error("truncated container header");
}

int cmd_compress(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string in = argv[0], out = argv[1];
  Params p;
  std::size_t chunk_bytes = kDefaultChunkBytes;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--eb" && next()) p.error_bound = std::stod(argv[i]);
    else if (a == "--metric" && next()) p.metric = parse_metric(argv[i]);
    else if (a == "--tree" && next())
      p.tree = static_cast<EcqTree>(std::stoi(argv[i]));
    else if (a == "--no-sparse") p.allow_sparse = false;
    else if (a == "--dict" && next()) p.dict = parse_dict_mode(argv[i]);
    else if (a.rfind("--dict=", 0) == 0)
      p.dict = parse_dict_mode(a.substr(7));
    else if (a == "--chunk" && next())
      chunk_bytes = std::stoull(argv[i]);
    else if (a == "--threads" && next()) p.num_threads = std::stoi(argv[i]);
    else return usage();
  }

  std::ifstream fin;
  std::ofstream fout;
  std::istream& is = open_input(in, fin);
  std::ostream& os = open_output(out, fout);

  // The .eri header declares the block count, so the stream header can
  // be written final immediately -- no seeking, stdout works.
  const qc::EriDatasetHeader hdr = qc::read_dataset_header(is);
  const BlockSpec spec{hdr.shape.num_sub_blocks(),
                       hdr.shape.sub_block_size()};
  OstreamSink sink(os);
  write_tool_header(os, hdr.label, hdr.shape);
  StreamWriter writer(sink, spec, p,
                      StreamWriterOptions{.expected_blocks = hdr.num_blocks});

  std::vector<double> buf(
      std::max<std::size_t>(1, chunk_bytes / sizeof(double)));
  std::size_t left = hdr.num_blocks * spec.block_size();
  while (left > 0) {
    const std::size_t want = std::min(buf.size(), left);
    is.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(want * sizeof(double)));
    const auto got_bytes = static_cast<std::size_t>(is.gcount());
    if (got_bytes == 0 || got_bytes % sizeof(double) != 0) {
      throw std::runtime_error("truncated .eri input");
    }
    const std::size_t got = got_bytes / sizeof(double);
    writer.put_values(std::span<const double>(buf.data(), got));
    left -= got;
  }
  writer.finish();
  os.flush();
  if (!os) throw std::runtime_error("write failed: " + out);

  // When the container goes to stdout the report must not corrupt it.
  std::FILE* rpt = out == "-" ? stderr : stdout;
  const Stats& st = writer.stats();
  g_compress_stats = st;
  g_have_compress_stats = true;
  std::fprintf(rpt,
               "%s: %zu -> %zu bytes, ratio %.2fx (EB=%.0e, %s, %s)\n",
               hdr.label.c_str(), st.input_bytes, st.output_bytes,
               st.ratio(), p.error_bound, scaling_metric_name(p.metric),
               ecq_tree_name(p.tree));
  std::fprintf(rpt,
               "block types: %zu/%zu/%zu/%zu  outliers: %zu  sparse "
               "blocks: %zu\n",
               st.blocks_by_type[0], st.blocks_by_type[1],
               st.blocks_by_type[2], st.blocks_by_type[3], st.num_outliers,
               st.sparse_blocks);
  if (p.dict != DictMode::Off) {
    std::fprintf(rpt,
                 "dictionary: %zu entries, %zu exact + %zu delta refs, "
                 "%zu bytes (incl. tags)\n",
                 st.dict_entries, st.dict_exact_refs, st.dict_delta_refs,
                 st.dict_bits / 8);
  }
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string in = argv[0], out = argv[1];
  std::size_t chunk_bytes = kDefaultChunkBytes;
  int num_threads = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--chunk" && next()) chunk_bytes = std::stoull(argv[i]);
    else if (a == "--threads" && next()) num_threads = std::stoi(argv[i]);
    else return usage();
  }

  std::ifstream fin;
  std::ofstream fout;
  std::istream& is = open_input(in, fin);
  std::ostream& os = open_output(out, fout);

  std::string label;
  qc::BlockShape shape;
  read_tool_header(is, label, shape);
  IstreamSource source(is);
  StreamConsumer consumer(
      source, StreamConsumerOptions{.chunk_bytes = chunk_bytes,
                                    .num_threads = num_threads});
  if (consumer.info().spec.num_sub_blocks != shape.num_sub_blocks() ||
      consumer.info().spec.sub_block_size != shape.sub_block_size()) {
    throw std::runtime_error("container shape disagrees with stream header");
  }
  const std::size_t num_blocks = consumer.blocks_remaining();
  qc::write_dataset_header(os, {label, shape, num_blocks});

  std::vector<double> buf(
      std::max<std::size_t>(1, chunk_bytes / sizeof(double)));
  for (;;) {
    const std::size_t n = consumer.read_values(buf);
    if (n == 0) break;
    os.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(n * sizeof(double)));
    if (!os) throw std::runtime_error("write failed: " + out);
  }
  os.flush();
  if (!os) throw std::runtime_error("write failed: " + out);

  std::FILE* rpt = out == "-" ? stderr : stdout;
  std::fprintf(rpt,
               "wrote %s: %zu blocks, %.2f MB (values within the error "
               "bound of the originals)\n",
               out.c_str(), num_blocks,
               static_cast<double>(num_blocks * shape.block_size() *
                                   sizeof(double)) /
                   1e6);
  return 0;
}

int cmd_verify(const char* eri_path, const char* pastri_path) {
  const auto original = qc::load_dataset(eri_path);
  const auto bytes = read_file(pastri_path);

  // Whole-container path: parse the header in memory, decompress all.
  bitio::BitReader r(bytes);
  if (r.read_bits(32) != kToolMagic) {
    throw std::runtime_error("not a pastri_tool container");
  }
  const auto label_len = static_cast<std::uint32_t>(r.read_bits(32));
  if (label_len > (1u << 20)) throw std::runtime_error("corrupt label");
  r.skip_bits(8 * label_len + 4 * 16);
  r.align_to_byte();
  const auto stream =
      std::span<const std::uint8_t>(bytes).subspan(r.bit_position() / 8);
  const auto restored = decompress(stream);
  const auto info = peek_info(stream);
  if (restored.size() != original.values.size()) {
    std::printf("FAIL: size mismatch\n");
    return 1;
  }
  double max_err = 0.0;
  for (std::size_t i = 0; i < restored.size(); ++i) {
    max_err = std::max(max_err,
                       std::abs(restored[i] - original.values[i]));
  }
  std::printf("max |error| = %.3e, bound = %.0e -> %s\n", max_err,
              info.error_bound,
              max_err <= info.error_bound ? "PASS" : "FAIL");
  return max_err <= info.error_bound ? 0 : 1;
}

int cmd_extract(const char* in, const char* first_s, const char* count_s) {
  // Random access through the block index: only the requested blocks are
  // decoded, however large the container.
  const auto bytes = read_file(in);
  bitio::BitReader r(bytes);
  if (r.read_bits(32) != kToolMagic) {
    throw std::runtime_error("not a pastri_tool container");
  }
  const auto label_len = static_cast<std::uint32_t>(r.read_bits(32));
  if (label_len > (1u << 20)) throw std::runtime_error("corrupt label");
  r.skip_bits(8 * label_len + 4 * 16);
  r.align_to_byte();
  const auto stream =
      std::span<const std::uint8_t>(bytes).subspan(r.bit_position() / 8);
  const BlockReader reader(stream);
  const std::size_t first = std::stoull(first_s);
  const std::size_t count = count_s ? std::stoull(count_s) : 1;
  const auto values = reader.read_range(first, count);
  std::printf("# %zu block(s) from %zu of %zu (container v%u, block size "
              "%zu)\n",
              count, first, reader.num_blocks(), reader.info().version,
              reader.info().spec.block_size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("%.17g\n", values[i]);
  }
  return 0;
}

int cmd_inspect(const char* in) {
  const auto bytes = read_file(in);
  bitio::BitReader r(bytes);
  if (r.read_bits(32) != kToolMagic) {
    throw std::runtime_error("not a pastri_tool container");
  }
  const auto label_len = static_cast<std::uint32_t>(r.read_bits(32));
  if (label_len > (1u << 20)) throw std::runtime_error("corrupt label");
  std::string label(label_len, '\0');
  for (auto& ch : label) ch = static_cast<char>(r.read_bits(8));
  r.skip_bits(4 * 16);
  r.align_to_byte();
  const auto stream =
      std::span<const std::uint8_t>(bytes).subspan(r.bit_position() / 8);

  // Probe through the C API first: a malformed or truncated container
  // reports its status code and the thread's error message instead of an
  // unwound exception.  Decoding block 0 walks the whole frame -- header,
  // index footer, offset table, and (v4) the dictionary section.
  size_t nsb = 0, sbs = 0, nb = 0;
  pastri_status st =
      pastri_peek(stream.data(), stream.size(), nullptr, &nsb, &sbs, &nb);
  if (st == PASTRI_OK && nb > 0) {
    std::vector<double> probe(nsb * sbs);
    st = pastri_decompress_block(stream.data(), stream.size(), 0,
                                 probe.data(), probe.size());
  }
  if (st != PASTRI_OK) {
    std::fprintf(stderr, "error: %s: %s\n", pastri_status_name(st),
                 pastri_last_error_message());
    return 1;
  }

  const BlockReader reader(stream);
  const StreamInfo& info = reader.info();
  std::printf("%s: container v%u, %zu blocks of %zux%zu (EB=%.0e, %s, "
              "%s)\n",
              label.c_str(), info.version, reader.num_blocks(),
              info.spec.num_sub_blocks, info.spec.sub_block_size,
              info.error_bound, scaling_metric_name(info.metric),
              ecq_tree_name(info.tree));

  const BlockIndex& idx = reader.index();
  std::size_t payload_bytes = 0, min_len = SIZE_MAX, max_len = 0;
  for (std::size_t b = 0; b < idx.num_blocks(); ++b) {
    const std::size_t len = idx.extent(b).length;
    payload_bytes += len;
    min_len = std::min(min_len, len);
    max_len = std::max(max_len, len);
  }
  if (idx.num_blocks() == 0) min_len = 0;
  std::printf("index: %zu entries, %zu table bytes; payloads %zu bytes "
              "(min %zu / avg %.1f / max %zu per block)\n",
              idx.num_blocks(), idx.serialized_bytes(), payload_bytes,
              min_len,
              idx.num_blocks()
                  ? static_cast<double>(payload_bytes) /
                        static_cast<double>(idx.num_blocks())
                  : 0.0,
              max_len);

  if (const CodecContext* ctx = reader.dict_context()) {
    const PatternDict& dict = ctx->dict();
    std::printf("dictionary: %zu entries, %zu section bytes",
                dict.size(), dict.section_bytes());
    if (dict.size() > 0) {
      std::size_t pattern_values = 0;
      for (std::size_t id = 0; id < dict.size(); ++id) {
        pattern_values += dict.entry(id).pq.size();
      }
      std::printf(" (first defined by block %llu, %zu pattern values "
                  "shared)",
                  static_cast<unsigned long long>(
                      dict.entry(0).defining_block),
                  pattern_values);
    }
    std::printf("\n");
  } else {
    std::printf("dictionary: none (v%u container)\n", info.version);
  }

  // Resolved SIMD tier (what the probe decode above actually ran on)
  // plus per-tier availability, so a mis-dispatch -- e.g. AVX-512
  // silently falling back to scalar on an OS without ZMM state saving
  // -- is visible here and in the pastri_core_simd_decode_backend
  // gauge of --metrics.
  std::printf("simd: decode backend %s; tiers",
              simd::backend_name(simd::active_backend()));
  for (simd::Backend b : simd::kAllBackends) {
    std::printf(" %s=%s", simd::backend_name(b),
                simd::backend_supported(b) ? "yes" : "no");
  }
  std::printf("\n");
  return 0;
}

/// generate: the fused compute->compress->io pipeline from the shell.
/// Plans MOLECULE's sampled CONFIG dataset, computes quartet blocks on
/// a producer thread, encodes on the main thread, drains shard bytes on
/// io threads, and writes `DIR/BASENAME.manifest` + shards -- the same
/// files a dense generate-then-compress run produces, byte for byte.
/// --resume continues an interrupted dump; --sequential is the
/// no-overlap baseline (identical output, for timing comparisons).
int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string molecule = argv[0], config = argv[1];
  const std::string dir = argv[2], basename = argv[3];
  Params p;
  qc::DatasetOptions dopt;
  dopt.config = qc::parse_config(config);
  qc::EriDumpOptions dump;
  qc::EriPipelineOptions popt;
  for (int i = 4; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--shards" && next()) dump.num_shards = std::stoi(argv[i]);
    else if (a == "--resume") dump.resume = true;
    else if (a == "--sequential") {
      popt.pipelined = false;
      popt.async_io = false;
    }
    else if (a == "--eb" && next()) p.error_bound = std::stod(argv[i]);
    else if (a == "--dict" && next()) p.dict = parse_dict_mode(argv[i]);
    else if (a == "--blocks" && next())
      dopt.max_blocks = std::stoull(argv[i]);
    else if (a == "--batch" && next())
      popt.batch_blocks = std::stoull(argv[i]);
    else if (a == "--producers" && next())
      popt.producers = std::stoull(argv[i]);
    else if (a == "--seed" && next()) dopt.seed = std::stoull(argv[i]);
    else return usage();
  }

  const qc::Molecule mol = qc::make_molecule(molecule);
  const qc::EriDumpResult res =
      qc::dump_eri_sharded(mol, dopt, p, dir, basename, dump, popt);
  const qc::EriPipelineResult& pl = res.pipeline;

  std::printf("%s: %zu blocks -> %zu shards, %zu compressed bytes"
              " (%zu shards / %zu blocks reused)\n",
              pl.meta.label.c_str(), pl.meta.num_blocks, res.shards_total,
              res.bytes_total, res.shards_reused, res.blocks_reused);
  std::printf("wall %.3f s; stage busy compute %.3f / encode %.3f / io "
              "%.3f s\n",
              static_cast<double>(pl.wall_ns) / 1e9,
              static_cast<double>(pl.compute_ns) / 1e9,
              static_cast<double>(pl.encode_ns) / 1e9,
              static_cast<double>(pl.io_ns) / 1e9);
  std::printf("stalls compute %.3f / encode %.3f / io %.3f s; overlap "
              "efficiency %.0f%%\n",
              static_cast<double>(pl.compute_stall_ns) / 1e9,
              static_cast<double>(pl.encode_stall_ns) / 1e9,
              static_cast<double>(pl.io_stall_ns) / 1e9,
              100.0 * pl.overlap_efficiency);
  if (pl.producers.size() > 1) {
    for (std::size_t i = 0; i < pl.producers.size(); ++i) {
      std::printf("  producer %zu: %zu chunks, busy %.3f s, stalled %.3f "
                  "s\n",
                  i, pl.producers[i].chunks,
                  static_cast<double>(pl.producers[i].compute_ns) / 1e9,
                  static_cast<double>(pl.producers[i].stall_ns) / 1e9);
    }
  }
  if (pl.stats.output_bytes > 0) {
    std::printf("codec: %zu -> %zu bytes, ratio %.2fx (EB=%.0e)\n",
                pl.stats.input_bytes, pl.stats.output_bytes,
                pl.stats.ratio(), p.error_bound);
  }
  return 0;
}

/// serve-client: drive a running pastri_serve daemon.
///
///   serve-client HOST:PORT ping
///   serve-client HOST:PORT get-block STORE_PATH FIRST [COUNT]
///   serve-client HOST:PORT stats STORE_PATH
///   serve-client HOST:PORT put-stream IN.eri OUT.pastri [--eb E]
///
/// STORE_PATH and OUT.pastri name files on the daemon's host (it opens
/// them server-side); IN.eri is read locally and streamed over the
/// wire.  put-stream writes a raw PaSTRI container (no tool header),
/// which open_store/get-block read back directly.
std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& arg) {
  const std::size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon + 1 >= arg.size()) {
    throw std::invalid_argument("expected HOST:PORT, got: " + arg);
  }
  return {arg.substr(0, colon),
          static_cast<std::uint16_t>(std::stoul(arg.substr(colon + 1)))};
}

int cmd_serve_client(int argc, char** argv) {
  if (argc < 2) return usage();
  const auto [host, port] = parse_host_port(argv[0]);
  const std::string verb = argv[1];
  serve::Client client(host, port);

  if (verb == "ping") {
    client.ping();
    std::printf("ok\n");
    return 0;
  }
  if (verb == "get-block" && argc >= 4) {
    const serve::StoreInfo info = client.open_store(argv[2]);
    const std::size_t first = std::stoull(argv[3]);
    const std::size_t count = argc >= 5 ? std::stoull(argv[4]) : 1;
    const auto values = client.get_range(info.id, first, count);
    std::printf("# %zu block(s) from %zu of %llu (block size %llu)\n",
                count, first,
                static_cast<unsigned long long>(info.num_blocks),
                static_cast<unsigned long long>(info.block_size));
    for (const double v : values) std::printf("%.17g\n", v);
    return 0;
  }
  if (verb == "stats" && argc >= 3) {
    const serve::StoreInfo info = client.open_store(argv[2]);
    const CacheStats st = client.stats(info.id);
    std::printf("store %u: %llu blocks, cache hits %llu misses %llu "
                "bytes %llu unique %llu\n",
                info.id,
                static_cast<unsigned long long>(info.num_blocks),
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.bytes),
                static_cast<unsigned long long>(st.unique_blocks));
    return 0;
  }
  if (verb == "put-stream" && argc >= 4) {
    double eb = 0.0;
    for (int i = 4; i < argc; ++i) {
      if (std::string(argv[i]) == "--eb" && i + 1 < argc) {
        eb = std::stod(argv[++i]);
      }
    }
    std::ifstream fin;
    std::istream& is = open_input(argv[2], fin);
    const qc::EriDatasetHeader hdr = qc::read_dataset_header(is);
    const std::uint32_t session = client.put_open(
        argv[3],
        static_cast<std::uint16_t>(hdr.shape.num_sub_blocks()),
        static_cast<std::uint16_t>(hdr.shape.sub_block_size()), eb);
    const std::size_t block_size =
        hdr.shape.num_sub_blocks() * hdr.shape.sub_block_size();
    std::vector<double> buf(block_size * 64);
    std::size_t left = hdr.num_blocks * block_size;
    while (left > 0) {
      const std::size_t want = std::min(buf.size(), left);
      is.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(want * sizeof(double)));
      const auto got_bytes = static_cast<std::size_t>(is.gcount());
      if (got_bytes == 0 || got_bytes % sizeof(double) != 0) {
        throw std::runtime_error("truncated .eri input");
      }
      buf.resize(got_bytes / sizeof(double));
      client.put_chunk(session, buf);
      left -= buf.size();
      buf.resize(block_size * 64);
    }
    const serve::PutResult res = client.put_close(session);
    std::printf("%s: %llu blocks, %llu -> %llu bytes (%.2fx)\n", argv[3],
                static_cast<unsigned long long>(res.num_blocks),
                static_cast<unsigned long long>(res.input_bytes),
                static_cast<unsigned long long>(res.output_bytes),
                res.output_bytes
                    ? static_cast<double>(res.input_bytes) /
                          static_cast<double>(res.output_bytes)
                    : 0.0);
    return 0;
  }
  return usage();
}

/// Strip --metrics[=json|prom] from argv (any position, any subcommand)
/// and record the requested mode.  Returns the new argc, or -1 on a bad
/// value.
int strip_metrics_flag(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--metrics" || a == "--metrics=json") {
      g_metrics_mode = MetricsMode::Json;
    } else if (a == "--metrics=prom") {
      g_metrics_mode = MetricsMode::Prom;
    } else if (a.rfind("--metrics=", 0) == 0) {
      std::fprintf(stderr, "error: bad --metrics value (json|prom)\n");
      return -1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  return kept;
}

void report_metrics() {
  if (g_metrics_mode == MetricsMode::Off) return;
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  if (g_metrics_mode == MetricsMode::Prom) {
    std::fputs(obs::export_prometheus(snap).c_str(), stderr);
    return;
  }
  const std::string json = g_have_compress_stats
                               ? obs::export_run_json(g_compress_stats, snap)
                               : obs::export_json(snap);
  std::fprintf(stderr, "%s\n", json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  argc = strip_metrics_flag(argc, argv);
  if (argc < 0) return 2;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  int rc = 2;
  try {
    if (cmd == "compress") rc = cmd_compress(argc - 2, argv + 2);
    else if (cmd == "decompress") rc = cmd_decompress(argc - 2, argv + 2);
    else if (cmd == "verify" && argc >= 4)
      rc = cmd_verify(argv[2], argv[3]);
    else if (cmd == "extract" && argc >= 4)
      rc = cmd_extract(argv[2], argv[3], argc >= 5 ? argv[4] : nullptr);
    else if (cmd == "inspect" && argc >= 3) rc = cmd_inspect(argv[2]);
    else if (cmd == "generate") rc = cmd_generate(argc - 2, argv + 2);
    else if (cmd == "serve-client") rc = cmd_serve_client(argc - 2, argv + 2);
    else return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    report_metrics();
    return 1;
  }
  report_metrics();
  return rc;
}
