// pastri_tool - Command-line compressor, the analogue of the PaSTRI mode
// shipped in the SZ package: compresses/decompresses .eri dataset files.
//
//   $ pastri_tool compress   in.eri out.pastri [--eb 1e-10]
//                            [--metric ER|FR|AR|AAR|IS]
//                            [--tree 1..5] [--no-sparse]
//   $ pastri_tool decompress in.pastri out.eri
//   $ pastri_tool verify     in.eri in.pastri
//   $ pastri_tool extract    in.pastri FIRST [COUNT]   # seek, don't scan
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/pastri.h"
#include "qc/eri_engine.h"

namespace {

using namespace pastri;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pastri_tool compress   IN.eri OUT.pastri [--eb E] [--metric M]"
      " [--tree N] [--no-sparse]\n"
      "  pastri_tool decompress IN.pastri OUT.eri\n"
      "  pastri_tool verify     IN.eri IN.pastri\n"
      "  pastri_tool extract    IN.pastri FIRST [COUNT]\n");
  return 2;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open " + path);
  const auto size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  return data;
}

void write_file(const std::string& path,
                std::span<const std::uint8_t> data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) throw std::runtime_error("write failed: " + path);
}

ScalingMetric parse_metric(const std::string& s) {
  for (ScalingMetric m : {ScalingMetric::FR, ScalingMetric::ER,
                          ScalingMetric::AR, ScalingMetric::AAR,
                          ScalingMetric::IS}) {
    if (s == scaling_metric_name(m)) return m;
  }
  throw std::invalid_argument("unknown metric: " + s);
}

int cmd_compress(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string in = argv[0], out = argv[1];
  Params p;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--eb" && next()) p.error_bound = std::stod(argv[i]);
    else if (a == "--metric" && next()) p.metric = parse_metric(argv[i]);
    else if (a == "--tree" && next())
      p.tree = static_cast<EcqTree>(std::stoi(argv[i]));
    else if (a == "--no-sparse") p.allow_sparse = false;
    else return usage();
  }
  const auto ds = qc::load_dataset(in);
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Stats st;
  const auto stream = compress(ds.values, spec, p, &st);

  // Container: the compressed stream plus the dataset metadata needed to
  // rebuild the .eri file on decompression.
  bitio::BitWriter w;
  w.write_bits(0x50435354, 32);  // "TSCP"
  const auto label_len = static_cast<std::uint32_t>(ds.label.size());
  w.write_bits(label_len, 32);
  for (char c : ds.label) w.write_bits(static_cast<std::uint8_t>(c), 8);
  for (auto n : ds.shape.n) w.write_bits(n, 16);
  w.write_bytes(stream);
  write_file(out, w.take());

  std::printf("%s: %zu -> %zu bytes, ratio %.2fx (EB=%.0e, %s, %s)\n",
              ds.label.c_str(), st.input_bytes, st.output_bytes,
              st.ratio(), p.error_bound, scaling_metric_name(p.metric),
              ecq_tree_name(p.tree));
  std::printf("block types: %zu/%zu/%zu/%zu  outliers: %zu  sparse "
              "blocks: %zu\n",
              st.blocks_by_type[0], st.blocks_by_type[1],
              st.blocks_by_type[2], st.blocks_by_type[3], st.num_outliers,
              st.sparse_blocks);
  return 0;
}

qc::EriDataset decode_container(const std::vector<std::uint8_t>& bytes) {
  bitio::BitReader r(bytes);
  if (r.read_bits(32) != 0x50435354) {
    throw std::runtime_error("not a pastri_tool container");
  }
  qc::EriDataset ds;
  const auto label_len = static_cast<std::uint32_t>(r.read_bits(32));
  if (label_len > (1u << 20)) throw std::runtime_error("corrupt label");
  ds.label.resize(label_len);
  for (auto& c : ds.label) c = static_cast<char>(r.read_bits(8));
  for (auto& n : ds.shape.n) {
    n = static_cast<std::uint16_t>(r.read_bits(16));
  }
  r.align_to_byte();
  const std::size_t off = r.bit_position() / 8;
  ds.values = decompress(
      std::span<const std::uint8_t>(bytes).subspan(off));
  ds.num_blocks = ds.values.size() / ds.shape.block_size();
  return ds;
}

int cmd_decompress(const char* in, const char* out) {
  const auto ds = decode_container(read_file(in));
  qc::save_dataset(ds, out);
  std::printf("wrote %s: %zu blocks, %.2f MB (values within the error "
              "bound of the originals)\n",
              out, ds.num_blocks, ds.size_bytes() / 1e6);
  return 0;
}

int cmd_verify(const char* eri_path, const char* pastri_path) {
  const auto original = qc::load_dataset(eri_path);
  const auto restored = decode_container(read_file(pastri_path));
  const auto info = peek_info(std::span<const std::uint8_t>(
      read_file(pastri_path)).subspan(4 + 4 + original.label.size() + 8));
  if (restored.values.size() != original.values.size()) {
    std::printf("FAIL: size mismatch\n");
    return 1;
  }
  double max_err = 0.0;
  for (std::size_t i = 0; i < restored.values.size(); ++i) {
    max_err = std::max(max_err,
                       std::abs(restored.values[i] - original.values[i]));
  }
  std::printf("max |error| = %.3e, bound = %.0e -> %s\n", max_err,
              info.error_bound,
              max_err <= info.error_bound ? "PASS" : "FAIL");
  return max_err <= info.error_bound ? 0 : 1;
}

int cmd_extract(const char* in, const char* first_s, const char* count_s) {
  // Random access through the block index: only the requested blocks are
  // decoded, however large the container.
  const auto bytes = read_file(in);
  bitio::BitReader r(bytes);
  if (r.read_bits(32) != 0x50435354) {
    throw std::runtime_error("not a pastri_tool container");
  }
  const auto label_len = static_cast<std::uint32_t>(r.read_bits(32));
  if (label_len > (1u << 20)) throw std::runtime_error("corrupt label");
  r.skip_bits(8 * label_len + 4 * 16);
  r.align_to_byte();
  const auto stream =
      std::span<const std::uint8_t>(bytes).subspan(r.bit_position() / 8);
  const BlockReader reader(stream);
  const std::size_t first = std::stoull(first_s);
  const std::size_t count = count_s ? std::stoull(count_s) : 1;
  const auto values = reader.read_range(first, count);
  std::printf("# %zu block(s) from %zu of %zu (container v%u, block size "
              "%zu)\n",
              count, first, reader.num_blocks(), reader.info().version,
              reader.info().spec.block_size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("%.17g\n", values[i]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "compress") return cmd_compress(argc - 2, argv + 2);
    if (cmd == "decompress" && argc >= 4)
      return cmd_decompress(argv[2], argv[3]);
    if (cmd == "verify" && argc >= 4) return cmd_verify(argv[2], argv[3]);
    if (cmd == "extract" && argc >= 4)
      return cmd_extract(argv[2], argv[3], argc >= 5 ? argv[4] : nullptr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
