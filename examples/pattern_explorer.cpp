// pattern_explorer - Interactive view of what PaSTRI sees inside one ERI
// shell block: per-sub-block scaling metrics, the quantization plan of
// Section IV-B (P_b, S_b, EC binning -- the Fig. 5 picture), the ECQ bin
// histogram, and the chosen block representation.
//
//   $ pattern_explorer [molecule] [config] [block-index] [eb]
#include <cmath>
#include <cstdio>
#include <string>

#include "core/pastri.h"
#include "qc/eri_engine.h"

int main(int argc, char** argv) {
  using namespace pastri;
  const std::string molecule = argc > 1 ? argv[1] : "benzene";
  const std::string config = argc > 2 ? argv[2] : "(dd|dd)";
  const std::size_t want_block = argc > 3 ? std::stoul(argv[3]) : 5;
  const double eb = argc > 4 ? std::stod(argv[4]) : 1e-10;

  qc::DatasetOptions opt;
  opt.config = qc::parse_config(config);
  opt.max_blocks = want_block + 1;
  const auto ds = qc::generate_eri_dataset(qc::make_molecule(molecule), opt);
  const std::size_t b = std::min(want_block, ds.num_blocks - 1);
  const auto block = ds.block(b);
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};

  std::printf("%s block %zu: %zu sub-blocks x %zu points, EB = %.0e\n\n",
              ds.label.c_str(), b, spec.num_sub_blocks,
              spec.sub_block_size, eb);

  // Scaling coefficients under each metric.
  std::printf("scaling coefficients by metric (first 8 sub-blocks):\n");
  std::printf("%-6s", "SB");
  for (auto m : {ScalingMetric::FR, ScalingMetric::ER, ScalingMetric::AR,
                 ScalingMetric::AAR, ScalingMetric::IS}) {
    std::printf(" %9s", scaling_metric_name(m));
  }
  std::printf("\n");
  PatternSelection sels[5];
  int mi = 0;
  for (auto m : {ScalingMetric::FR, ScalingMetric::ER, ScalingMetric::AR,
                 ScalingMetric::AAR, ScalingMetric::IS}) {
    sels[mi++] = select_pattern(block, spec, m);
  }
  for (std::size_t j = 0;
       j < std::min<std::size_t>(8, spec.num_sub_blocks); ++j) {
    std::printf("%-6zu", j);
    for (int k = 0; k < 5; ++k) std::printf(" %9.4f", sels[k].scales[j]);
    std::printf("\n");
  }

  // Quantization plan (Section IV-B / Fig. 5).
  Params p;
  p.error_bound = eb;
  const BlockAnalysis a = analyze_block(block, spec, p);
  const auto& q = a.quantized;
  std::printf("\nquantization plan (practical approach):\n");
  std::printf("  pattern sub-block : %zu (ER)\n",
              a.selection.pattern_sub_block);
  std::printf("  P_b = S_b         : %u bits\n", q.spec.pattern_bits);
  std::printf("  P binsize         : %.3e (= 2*EB)\n",
              q.spec.pattern_binsize);
  std::printf("  S binsize         : %.3e (= 2^(1-S_b))\n",
              q.spec.scale_binsize);
  std::printf("  EC binsize        : %.3e (= 2*EB)\n", q.spec.ec_binsize);
  std::printf("  EC_b,max          : %u -> block type %d\n", q.ecb_max,
              block_type(q.ecb_max));
  std::printf("  outliers (ECQ!=0) : %zu of %zu (%.1f%%)\n",
              q.num_outliers, block.size(),
              100.0 * q.num_outliers / block.size());
  std::printf("  representation    : %s, %zu payload bits (%.2f "
              "bits/point)\n",
              a.zero_block ? "zero-block"
                           : (a.sparse_chosen ? "sparse ECQ" : "dense ECQ"),
              a.payload_bits,
              static_cast<double>(a.payload_bits) / block.size());

  // ECQ bin histogram (the Fig. 6 x-axis for this block).
  std::size_t bins[26] = {0};
  for (auto v : q.ecq) ++bins[std::min(ecq_bin(v), 25u)];
  std::printf("\nECQ bin histogram:\n");
  for (unsigned i = 1; i <= 25; ++i) {
    if (bins[i] == 0) continue;
    std::printf("  %2u bits: %6zu  ", i, bins[i]);
    const int stars = static_cast<int>(
        60.0 * bins[i] / block.size());
    for (int s = 0; s < stars; ++s) std::fputc('#', stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}
