// zcheck - Z-Checker-style assessment CLI: compare an original `.eri`
// dataset against a reconstructed one (or against a `.pastri` stream's
// implied reconstruction) and print the quality metrics the paper
// evaluates with (compression ratio, bit rate, PSNR, max error).
//
//   $ zcheck original.eri reconstructed.eri
//   $ zcheck original.eri --stream compressed.bin
#include <cstdio>
#include <fstream>
#include <string>

#include "core/pastri.h"
#include "qc/eri_engine.h"
#include "zchecker/dataset_stats.h"
#include "zchecker/metrics.h"

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open " + path);
  const auto size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pastri;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: zcheck ORIGINAL.eri RECONSTRUCTED.eri\n"
                 "       zcheck ORIGINAL.eri --stream STREAM.bin\n");
    return 2;
  }
  try {
    const qc::EriDataset original = qc::load_dataset(argv[1]);
    std::vector<double> reconstructed;
    std::size_t compressed_bytes = 0;
    if (std::string(argv[2]) == "--stream" && argc >= 4) {
      const auto stream = read_file(argv[3]);
      compressed_bytes = stream.size();
      const StreamInfo info = peek_info(stream);
      std::printf("stream     : EB=%.0e, %zu blocks of %zux%zu, %s/%s\n",
                  info.error_bound, info.num_blocks,
                  info.spec.num_sub_blocks, info.spec.sub_block_size,
                  scaling_metric_name(info.metric),
                  ecq_tree_name(info.tree));
      reconstructed = decompress(stream);
    } else {
      reconstructed = qc::load_dataset(argv[2]).values;
    }
    if (reconstructed.size() != original.values.size()) {
      std::fprintf(stderr, "error: size mismatch (%zu vs %zu values)\n",
                   original.values.size(), reconstructed.size());
      return 1;
    }

    const auto err = zchecker::compare(original.values, reconstructed);
    std::printf("dataset    : %s (%zu values)\n", original.label.c_str(),
                err.n);
    std::printf("max |error|: %.6e\n", err.max_abs_error);
    std::printf("mean |err| : %.6e\n", err.mean_abs_error);
    std::printf("MSE        : %.6e\n", err.mse);
    std::printf("PSNR       : %.2f dB\n", err.psnr_db);
    if (compressed_bytes > 0) {
      std::printf("ratio      : %.2fx  (bitrate %.3f bits/value)\n",
                  zchecker::compression_ratio(original.size_bytes(),
                                              compressed_bytes),
                  zchecker::bitrate_bits_per_value(original.size_bytes(),
                                                   compressed_bytes));
    }
    std::printf("\noriginal dataset population:\n");
    zchecker::print_dataset_stats(zchecker::analyze_dataset(original));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
