// quickstart - The smallest end-to-end use of the PaSTRI library:
// generate a (dd|dd) ERI dataset for benzene, compress it with an
// absolute error bound of 1e-10, decompress, and verify the bound.
//
//   $ ./examples/quickstart
#include <cmath>
#include <cstdio>

#include "core/pastri.h"
#include "qc/eri_engine.h"

int main() {
  using namespace pastri;

  // 1. Generate ERI data (in a real workflow this comes from GAMESS).
  qc::DatasetOptions opt;
  opt.config = qc::parse_config("(dd|dd)");
  opt.max_blocks = 300;
  const qc::EriDataset ds =
      qc::generate_eri_dataset(qc::make_benzene(), opt);
  std::printf("dataset : %s, %zu blocks, %.2f MB\n", ds.label.c_str(),
              ds.num_blocks, ds.size_bytes() / 1e6);

  // 2. Tell PaSTRI the block geometry (the BF configuration) and bound.
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  Params params;
  params.error_bound = 1e-10;

  // 3. Compress.
  Stats stats;
  const std::vector<std::uint8_t> compressed =
      compress(ds.values, spec, params, &stats);
  std::printf("ratio   : %.2fx (%zu -> %zu bytes)\n", stats.ratio(),
              stats.input_bytes, stats.output_bytes);

  // 4. Decompress and verify the point-wise error bound.
  const std::vector<double> restored = decompress(compressed);
  double max_err = 0.0;
  for (std::size_t i = 0; i < restored.size(); ++i) {
    max_err = std::max(max_err, std::abs(restored[i] - ds.values[i]));
  }
  std::printf("max err : %.3e (bound %.0e) -> %s\n", max_err,
              params.error_bound,
              max_err <= params.error_bound ? "OK" : "VIOLATED");
  return max_err <= params.error_bound ? 0 : 1;
}
