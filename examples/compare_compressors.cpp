// compare_compressors - A mini Fig. 9 for one molecule/configuration:
// ratio, rates, and error statistics of PaSTRI vs SZ vs ZFP.
//
//   $ compare_compressors [molecule] [config] [eb]
//   $ compare_compressors glutamine "(ff|ff)" 1e-10
#include <chrono>
#include <cstdio>
#include <string>

#include "compressors/compressor_iface.h"
#include "qc/eri_engine.h"
#include "zchecker/metrics.h"

int main(int argc, char** argv) {
  using namespace pastri;
  const std::string molecule = argc > 1 ? argv[1] : "glutamine";
  const std::string config = argc > 2 ? argv[2] : "(dd|dd)";
  const double eb = argc > 3 ? std::stod(argv[3]) : 1e-10;

  qc::DatasetOptions opt;
  opt.config = qc::parse_config(config);
  opt.max_blocks = 600;
  const auto ds = qc::generate_eri_dataset(qc::make_molecule(molecule), opt);
  const double mb = static_cast<double>(ds.size_bytes()) / 1e6;
  std::printf("%s: %zu blocks, %.2f MB, EB = %.0e\n\n", ds.label.c_str(),
              ds.num_blocks, mb, eb);

  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  std::unique_ptr<baselines::LossyCompressor> codecs[] = {
      baselines::make_pastri_compressor(spec),
      baselines::make_sz_compressor(),
      baselines::make_zfp_compressor(),
  };

  std::printf("%-8s %8s %10s %12s %12s %12s %10s\n", "codec", "ratio",
              "bitrate", "comp MB/s", "decomp MB/s", "max err", "PSNR");
  for (const auto& codec : codecs) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto stream = codec->compress(ds.values, eb);
    const auto t1 = std::chrono::steady_clock::now();
    const auto back = codec->decompress(stream);
    const auto t2 = std::chrono::steady_clock::now();
    const auto err = zchecker::compare(ds.values, back);
    std::printf("%-8s %8.2f %10.3f %12.1f %12.1f %12.3e %10.2f\n",
                codec->name().c_str(),
                zchecker::compression_ratio(ds.size_bytes(), stream.size()),
                zchecker::bitrate_bits_per_value(ds.size_bytes(),
                                                 stream.size()),
                mb / std::chrono::duration<double>(t1 - t0).count(),
                mb / std::chrono::duration<double>(t2 - t1).count(),
                err.max_abs_error, err.psnr_db);
    if (err.max_abs_error > eb) {
      std::printf("  ^^ ERROR BOUND VIOLATED\n");
      return 1;
    }
  }
  return 0;
}
