// pastri_serve - Long-running daemon serving compressed block stores
// over TCP (binary protocol + HTTP /metrics on one port).
//
//   pastri_serve [--port N] [--workers N] [--accept-queue N]
//                [--max-stores N] [--cache-blocks N] [--cache-shards N]
//
// Binds 127.0.0.1 only.  Prints "listening on 127.0.0.1:<port>" once
// ready (scrapeable by scripts that pass --port 0 for an ephemeral
// port) and exits cleanly on SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore>

#include "serve/server.h"

namespace {

std::binary_semaphore g_shutdown(0);

void on_signal(int) { g_shutdown.release(); }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--workers N] [--accept-queue N]\n"
      "          [--max-stores N] [--cache-blocks N] [--cache-shards N]\n"
      "Serves PaSTRI block stores on 127.0.0.1 (binary protocol and\n"
      "HTTP GET /metrics on the same port).  --port 0 (the default)\n"
      "picks an ephemeral port, printed on stdout at startup.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pastri::serve::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    auto take = [&](std::size_t& out) {
      if (val == nullptr) return false;
      out = static_cast<std::size_t>(std::strtoull(val, nullptr, 10));
      ++i;
      return true;
    };
    std::size_t n = 0;
    if (std::strcmp(arg, "--port") == 0 && take(n)) {
      config.port = static_cast<std::uint16_t>(n);
    } else if (std::strcmp(arg, "--workers") == 0 && take(n)) {
      config.num_workers = n;
    } else if (std::strcmp(arg, "--accept-queue") == 0 && take(n)) {
      config.accept_queue_depth = n;
    } else if (std::strcmp(arg, "--max-stores") == 0 && take(n)) {
      config.max_open_stores = n;
    } else if (std::strcmp(arg, "--cache-blocks") == 0 && take(n)) {
      config.default_cache.capacity_blocks = n;
    } else if (std::strcmp(arg, "--cache-shards") == 0 && take(n)) {
      config.default_cache.num_shards = n;
    } else {
      return usage(argv[0]);
    }
  }

  pastri::serve::Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pastri_serve: %s\n", e.what());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  g_shutdown.acquire();
  std::fprintf(stderr, "pastri_serve: shutting down\n");
  server.stop();
  return 0;
}
